"""Layered flow-network construction (Section III.A, Fig. 4).

Aladdin's network routes ``source → T_i → A_j → G_k → R_x → N_y → sink``.
Interposing application (``A``), sub-cluster (``G``) and rack (``R``)
vertices cuts the edge count from ``O(|T|·|N|)`` for the direct bipartite
form to ``O(|T| + |A|·|G| + |R| + |N|)`` — the optimisation the paper
credits with sub-second latency at the 100k-container scale.

All edge capacities are infinite except ``c(s, T_i)`` (the container's
demand along the flow dimension) and ``c(N_j, t)`` (the machine's
remaining capacity), mirroring Section III.C.  The multidimensional and
nonlinear parts of the capacity function are enforced by the *search*
(:class:`repro.core.search.FlowPathSearch`) via
:class:`~repro.flownet.capacity.VectorCapacity` and
:class:`~repro.core.blacklist.BlacklistFunction`, not by the scalar edge
capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.flownet.graph import FlowNetwork

#: Stand-in for the paper's "infinite" interior edge capacities.
INF_CAPACITY = 1e18


@dataclass
class LayeredNetwork:
    """The built network plus the id maps needed to decode flows."""

    net: FlowNetwork
    topology: ClusterTopology
    source: int
    sink: int
    task_node: dict[int, int]  # container id -> node
    app_node: dict[int, int]  # app id -> node
    cluster_node: dict[int, int]  # sub-cluster id -> node
    rack_node: dict[int, int]  # rack id -> node
    machine_node: dict[int, int]  # machine id -> node
    #: forward edge index of s -> T_i, per container id
    task_edge: dict[int, int] = field(default_factory=dict)
    #: forward edge index of N_j -> t, per machine id
    machine_edge: dict[int, int] = field(default_factory=dict)

    def n_edges(self) -> int:
        return self.net.n_forward_edges()

    def machine_of_node(self) -> dict[int, int]:
        """Inverse of :attr:`machine_node`."""
        return {node: machine for machine, node in self.machine_node.items()}


def build_layered_network(
    containers: list[Container],
    state: ClusterState,
    flow_dim: int = 0,
) -> LayeredNetwork:
    """Build the aggregated ``s→T→A→G→R→N→t`` network for one window.

    ``flow_dim`` selects the resource dimension used as the scalar flow
    commodity (CPU by default, matching the paper's evaluation).
    """
    topo = state.topology
    app_ids = sorted({c.app_id for c in containers})

    n_nodes = (
        2
        + len(containers)
        + len(app_ids)
        + topo.n_clusters
        + topo.n_racks
        + topo.n_machines
    )
    net = FlowNetwork(n_nodes)
    next_id = 0

    def take() -> int:
        nonlocal next_id
        next_id += 1
        return next_id - 1

    source = take()
    task_node = {c.container_id: take() for c in containers}
    app_node = {a: take() for a in app_ids}
    cluster_node = {g: take() for g in range(topo.n_clusters)}
    rack_node = {r: take() for r in range(topo.n_racks)}
    machine_node = {m: take() for m in range(topo.n_machines)}
    sink = take()

    out = LayeredNetwork(
        net=net,
        topology=topo,
        source=source,
        sink=sink,
        task_node=task_node,
        app_node=app_node,
        cluster_node=cluster_node,
        rack_node=rack_node,
        machine_node=machine_node,
    )

    # s -> T_i, capacity = demand along the flow dimension.
    for c in containers:
        demand = c.demand_vector(topo.resources)[flow_dim]
        out.task_edge[c.container_id] = net.add_edge(
            source, task_node[c.container_id], demand
        )
    # T_i -> A_j, infinite.
    for c in containers:
        net.add_edge(task_node[c.container_id], app_node[c.app_id], INF_CAPACITY)
    # A_j -> G_k, infinite (every app may use every sub-cluster).
    for a in app_ids:
        for g in range(topo.n_clusters):
            net.add_edge(app_node[a], cluster_node[g], INF_CAPACITY)
    # G_k -> R_x, infinite, only within the sub-cluster.
    for g in range(topo.n_clusters):
        for r in topo.racks_in_cluster(g):
            net.add_edge(cluster_node[g], rack_node[int(r)], INF_CAPACITY)
    # R_x -> N_y, infinite, only within the rack.
    for r in range(topo.n_racks):
        for m in topo.machines_in_rack(r):
            net.add_edge(rack_node[r], machine_node[int(m)], INF_CAPACITY)
    # N_y -> t, capacity = remaining machine resources along flow_dim.
    for m in range(topo.n_machines):
        out.machine_edge[m] = net.add_edge(
            machine_node[m], sink, float(state.available[m, flow_dim])
        )
    return out


def build_direct_network(
    containers: list[Container],
    state: ClusterState,
    flow_dim: int = 0,
) -> LayeredNetwork:
    """The naive ``O(|T|·|N|)`` bipartite form, for the ablation bench.

    Identical admissible placements, ``|T| · |N|`` interior edges instead
    of the aggregated layering — the paper's Section III.A example puts
    this at ~1 billion edges for the full trace versus ~300 thousand.
    """
    topo = state.topology
    n_nodes = 2 + len(containers) + topo.n_machines
    net = FlowNetwork(n_nodes)
    source = 0
    task_node = {
        c.container_id: 1 + i for i, c in enumerate(containers)
    }
    machine_node = {
        m: 1 + len(containers) + m for m in range(topo.n_machines)
    }
    sink = n_nodes - 1

    out = LayeredNetwork(
        net=net,
        topology=topo,
        source=source,
        sink=sink,
        task_node=task_node,
        app_node={},
        cluster_node={},
        rack_node={},
        machine_node=machine_node,
    )
    for c in containers:
        demand = c.demand_vector(topo.resources)[flow_dim]
        out.task_edge[c.container_id] = net.add_edge(
            source, task_node[c.container_id], demand
        )
        for m in range(topo.n_machines):
            net.add_edge(task_node[c.container_id], machine_node[m], INF_CAPACITY)
    for m in range(topo.n_machines):
        out.machine_edge[m] = net.add_edge(
            machine_node[m], sink, float(state.available[m, flow_dim])
        )
    return out
