"""AladdinScheduler — the end-to-end scheduler (Algorithm 1).

The scheduler consumes the arrival stream in *windows* of applications
(containers of one LLA are submitted together).  Within a window it
processes applications by descending weighted flow — the Equation 3–5
priority weighting — so a high-priority container can never be displaced
by a lower-priority one arriving in the same window; priority pressure
*across* windows is handled by the migration/preemption mechanisms.

Per application, the placement search realises Algorithm 1 with the two
prunings of Section IV.A:

* **Isomorphism limiting (IL)** — all containers of an application are
  identical, so machine feasibility (multidimensional capacity dominance
  plus the Equation 7–8 blacklist) is evaluated once per application,
  and one exhausted search kills the whole application's window.
* **Depth limiting (DL)** — containers are impartible, so the search for
  a container stops at its first admitting machine (a single ``argmin``
  over the packed-first score instead of a full candidate ordering).

With both prunings on, the per-container walk collapses further into
the **batched placement kernel** (:mod:`repro.core.batchkernel`): the
block's machine sequence is read off per-machine fit quotas over the
incrementally maintained packed-first index
(:mod:`repro.core.machindex`) in one vectorized pass, O(m + k) for a
block of k containers.  ``enable_batch_kernel`` (on by default) gates
it; overflow and rescue still run the per-container path.

Disabling either flag performs the exact extra work the pruning avoids —
per-container feasibility recomputation without IL, a full candidate
ordering per container without DL — while provably producing identical
placements (the tie-breaking score is total), which is how the Fig. 12
latency ablation measures their cost honestly.

Machine preference is most-packed-first (minimum remaining CPU, machine
id as tie-break), which directly serves the paper's resource-efficiency
objective of minimising the number of used machines.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.base import FailureReason, ScheduleResult, Scheduler
from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.core.batchkernel import block_plan
from repro.core.config import AladdinConfig
from repro.core.feascache import FeasibilityCache
from repro.core.machindex import MachineIndex, affinity_tier, packing_keys
from repro.core.migration import RescuePlanner
from repro.core.parallel import ParallelSweep
from repro.core.rescuekernel import RescueKernel
from repro.core.validate import validate_state
from repro.core.weights import derive_priority_weights


class AladdinScheduler(Scheduler):
    """The paper's scheduler; see the module docstring for semantics."""

    def __init__(self, config: AladdinConfig | None = None) -> None:
        self.config = config if config is not None else AladdinConfig()
        self.name = self.config.variant_name()
        #: priority-class weights derived for the last scheduled stream
        self.last_weights: dict[int, float] = {}
        #: cross-round IL feasibility verdicts (survives schedule() calls)
        self.feas_cache = FeasibilityCache()
        #: incrementally maintained packed-first machine ordering
        self.machine_index = MachineIndex()
        #: lifetime count of containers placed by the batch kernel
        self.batch_placed = 0
        #: vectorized rescue planning on the cache+index substrate;
        #: ``None`` routes rescues through the legacy per-machine loop
        self.rescue_kernel = (
            RescueKernel() if self.config.enable_rescue_kernel else None
        )
        #: rack-sharded parallel sweep; only built when the whole
        #: cache+index+kernel pipeline it parallelises is enabled, so
        #: ``workers=1`` (the default) leaves the serial path untouched.
        cfg = self.config
        self.parallel: ParallelSweep | None = None
        if (
            cfg.workers > 1
            and cfg.enable_il
            and cfg.enable_dl
            and cfg.enable_batch_kernel
            and cfg.enable_feasibility_cache
        ):
            self.parallel = ParallelSweep(cfg.workers)

    def close(self) -> None:
        """Release parallel-sweep workers and shared memory (idempotent)."""
        if self.parallel is not None:
            self.parallel.close()

    # ------------------------------------------------------------------
    def rebalance_shards(self, state: ClusterState) -> bool:
        """Resize the parallel sweep's shards by current resident density.

        Only acts when ``shard_rebalance`` is configured and the sweep is
        active; returns whether a rebalance happened.  Called by the
        online simulator at checkpoint boundaries (before the snapshot is
        written, so the checkpoint captures the post-rebalance layout).
        Placement decisions are unaffected — the merge re-establishes the
        serial total order for any rack-aligned partition — but the
        workers resync their caches cold, which shows up in cache
        telemetry (why the knob is opt-in).
        """
        if not self.config.shard_rebalance or self.parallel is None:
            return False
        from repro.core.parallel import rack_work_weights

        return self.parallel.rebalance(state, rack_work_weights(state))

    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Serialisable image of every cross-round ledger; see
        :func:`engine_checkpoint`."""
        return engine_checkpoint(self)

    def restore_checkpoint(self, payload: dict, state: ClusterState) -> None:
        """Adopt a :meth:`checkpoint` image against a restored ``state``;
        see :func:`engine_restore`."""
        engine_restore(self, payload, state)

    @classmethod
    def from_checkpoint(
        cls,
        payload: dict,
        state: ClusterState,
        config: AladdinConfig | None = None,
    ) -> "AladdinScheduler":
        """Build a scheduler whose ledgers resume from ``payload``.

        ``config`` must match the configuration the checkpoint was
        taken under for the resumed run to be bit-identical (a
        mismatched kernel/parallel layout degrades those components to
        a cold start instead of corrupting).
        """
        engine = cls(config)
        engine.restore_checkpoint(payload, state)
        return engine

    # ------------------------------------------------------------------
    def schedule(
        self, containers: list[Container], state: ClusterState
    ) -> ScheduleResult:
        t0 = time.perf_counter()
        result = ScheduleResult()
        result.telemetry = telemetry.SchedulerTelemetry()
        with telemetry.collect(result.telemetry):
            self._schedule(containers, state, result)
        if self.config.validate_placements:
            validate_state(state).raise_if_invalid(self.name)
        result.elapsed_s = time.perf_counter() - t0
        return result

    def _schedule(
        self,
        containers: list[Container],
        state: ClusterState,
        result: ScheduleResult,
    ) -> None:
        tele = result.telemetry
        blocks = _group_blocks(containers)
        self.last_weights = _derive_weights_for(containers, self.config)
        # The preemption guard uses the *minimal* compliant weights
        # (base 1): it admits a preemption only when the weighted-flow
        # gain holds under every Equation-5-compliant weighting, which
        # makes rescue outcomes invariant across the paper's
        # 16/32/64/128 base sweep.
        guard_weights = _derive_weights_for(containers, self.config, base=1.0)
        planner = RescuePlanner(
            state,
            self.config,
            guard_weights,
            machine_index=self.machine_index,
            kernel=self.rescue_kernel,
        )

        window = self.config.window_apps
        for start in range(0, len(blocks), window):
            window_blocks = blocks[start : start + window]
            # Weighted-flow order: highest priority class first; stable
            # within a class, preserving the arrival characteristic.
            window_blocks = sorted(
                window_blocks, key=lambda b: -self.last_weights[b[0].priority]
            )
            requeue: list[Container] = []
            with tele.phase("search"):
                for block in window_blocks:
                    self._place_block(block, state, planner, result, requeue)
            with tele.phase("requeue"):
                drain_requeue(self, requeue, state, planner, result)
        if self.config.final_repair and result.undeployed:
            with tele.phase("repair"):
                final_repair(self, containers, state, planner, result)
        # Rescue migrations move already-placed containers; re-read their
        # final machine from the authoritative state.
        for cid in result.placements:
            result.placements[cid] = state.assignment[cid]

    # ------------------------------------------------------------------
    def _feasible_mask(
        self,
        state: ClusterState,
        demand: np.ndarray,
        app_id: int,
        result: ScheduleResult,
    ) -> np.ndarray:
        """One IL feasibility evaluation, served incrementally when the
        cross-round cache is enabled.

        The work charged to ``explored`` is the number of per-machine
        verdicts actually recomputed — the full cluster without the
        cache, only the dirty machines with it.
        """
        if self.config.enable_il and self.config.enable_feasibility_cache:
            mask = self.feas_cache.feasible_mask(state, demand, app_id)
            result.explored += self.feas_cache.last_recomputed
            return mask
        result.explored += state.n_machines
        return state.feasible_mask(demand, app_id)

    # ------------------------------------------------------------------
    def _batch_place(
        self,
        block: list[Container],
        state: ClusterState,
        demand: np.ndarray,
        mask: np.ndarray,
        affinity: np.ndarray | None,
        result: ScheduleResult,
    ) -> int:
        """Deploy the block's prefix in one vectorized kernel sweep.

        Returns the number of containers placed.  Anything short of the
        full block means every candidate quota is exhausted; the caller
        routes the remainder through the rescue path.
        """
        app_id = block[0].app_id
        cs = state.constraints
        scope = cs.within_scope(app_id) if cs.has_within(app_id) else None
        order = self.machine_index.candidates(state, mask, affinity)
        machines = block_plan(state, demand, order, len(block), scope)
        placed = int(machines.size)
        # Commit the planned prefix in one batched mutation — the kernel
        # established feasibility, so the block path skips the scalar
        # per-container prechecks.
        state.deploy_block(block[:placed], machines, demand)
        for container, machine in zip(block, machines.tolist()):
            result.placements[container.container_id] = machine
        self.batch_placed += placed
        # One examined machine per placement, mirroring the DL walk's
        # per-container O(1) charge.
        result.explored += placed
        tele = result.telemetry
        if tele is not None:
            tele.batch_kernel_invocations += 1
            tele.dl_prune_hits += placed
            tele.machines_skipped += state.n_machines - int(
                np.unique(machines).size
            )
        return placed

    # ------------------------------------------------------------------
    def _parallel_place(
        self,
        block: list[Container],
        state: ClusterState,
        demand: np.ndarray,
        result: ScheduleResult,
    ) -> int:
        """Deploy the block's prefix via the rack-sharded parallel sweep.

        The sweep runs the per-shard feascache + machindex pipelines in
        the worker processes and merges their candidate prefixes into
        the serial order, so the planned machines — and therefore the
        deploys below — are bit-identical to :meth:`_batch_place` over a
        serially maintained cache and index.  The ``explored`` charge is
        the honest parallel equivalent: dominance verdicts actually
        recomputed across all shards, plus one per placement for the DL
        walk.
        """
        app_id = block[0].app_id
        cs = state.constraints
        scope = cs.within_scope(app_id) if cs.has_within(app_id) else None
        machines, recomputed, admitted = self.parallel.plan_block(
            state, demand, app_id, len(block), scope
        )
        placed = int(machines.size)
        state.deploy_block(block[:placed], machines, demand)
        for container, machine in zip(block, machines.tolist()):
            result.placements[container.container_id] = machine
        self.batch_placed += placed
        result.explored += recomputed + placed
        tele = result.telemetry
        if tele is not None:
            tele.batch_kernel_invocations += 1
            tele.dl_prune_hits += placed
            tele.machines_skipped += state.n_machines - int(
                np.unique(machines).size
            )
        return placed

    # ------------------------------------------------------------------
    def _place_block(
        self,
        block: list[Container],
        state: ClusterState,
        planner: RescuePlanner,
        result: ScheduleResult,
        requeue: list[Container],
    ) -> None:
        """Place one application's containers from the current window."""
        cfg = self.config
        app_id = block[0].app_id
        demand = block[0].demand_vector(state.topology.resources)
        within = state.constraints.has_within(app_id)
        n_machines = state.n_machines

        affinity = state.affinity_mask(app_id)
        candidates: _CandidateWalk | None = None
        pending = block
        if cfg.enable_il:
            if (
                cfg.enable_dl
                and cfg.enable_batch_kernel
                and self.parallel is not None
            ):
                # The sharded sweep subsumes the coordinator-side
                # feasibility evaluation; a mask is only rebuilt (from
                # the coordinator's own cache) if overflow containers
                # need the serial walk.
                placed = self._parallel_place(block, state, demand, result)
                pending = block[placed:]
                mask = (
                    self._feasible_mask(state, demand, app_id, result)
                    if pending
                    else None
                )
            else:
                mask = self._feasible_mask(state, demand, app_id, result)
                if cfg.enable_dl and cfg.enable_batch_kernel:
                    placed = self._batch_place(
                        block, state, demand, mask, affinity, result
                    )
                    pending = block[placed:]
                    if pending and placed:
                        # The kernel drained every quota; refresh the
                        # mask (now empty bar rounding) so the overflow
                        # containers fall straight through to rescue, as
                        # the per-container walk would at this exact
                        # point.
                        mask = self._feasible_mask(
                            state, demand, app_id, result
                        )
            if pending:
                candidates = _CandidateWalk(
                    state, demand, mask, within, cfg.enable_dl, affinity=affinity
                )

        tele = result.telemetry
        dead_reason: FailureReason | None = None
        for container in pending:
            if dead_reason is not None:
                # IL: an identical sibling already failed search + rescue
                # against unchanged state; skip without re-searching.
                result.undeployed[container.container_id] = dead_reason
                if tele is not None:
                    tele.il_prune_hits += 1
                continue

            if cfg.enable_il:
                machine = candidates.next_machine()
                result.explored += candidates.last_cost
                # Rescues mutate machines behind the walk's back; skip
                # entries that went stale (lost capacity or gained a
                # conflicting resident) instead of trusting them.
                while machine is not None and not (
                    state.fits(demand, machine)
                    and not state.would_violate(container, machine)
                ):
                    candidates.invalidate(machine)
                    machine = candidates.next_machine()
                    result.explored += candidates.last_cost
            else:
                # No IL: the per-container feasibility recomputation is
                # the exact redundant work the pruning (and its
                # cross-round cache) avoids, so it bypasses the cache.
                mask = state.feasible_mask(demand, app_id)
                result.explored += n_machines
                machine = _pick_machine(state, mask, cfg.enable_dl, affinity=affinity)
                result.explored += int(mask.sum()) if not cfg.enable_dl else 1

            if machine is None:
                outcome = planner.rescue(container, demand)
                result.explored += outcome.explored
                if outcome.ok and state.would_violate(
                    container, outcome.machine_id
                ):
                    # Defensive: a rescue must never hand back a machine
                    # the constraints still forbid (e.g. a rack-scope
                    # conflict the per-machine strategies cannot see).
                    outcome.machine_id = None
                    outcome.failure = FailureReason.ANTI_AFFINITY
                if outcome.ok:
                    result.migrations += outcome.migrations
                    result.preemptions += len(outcome.preempted)
                    requeue.extend(outcome.preempted)
                    state.deploy(container, outcome.machine_id, demand)
                    result.placements[container.container_id] = outcome.machine_id
                    if cfg.enable_il:
                        # The rescue moved containers around: the cached
                        # feasibility verdicts are stale, so the
                        # isomorphism cache is rebuilt from live state
                        # (the rebuild cost is charged to `explored`).
                        # With the cross-round cache the rebuild itself
                        # is incremental: only the machines the rescue
                        # touched are re-evaluated.
                        mask = self._feasible_mask(state, demand, app_id, result)
                        candidates = _CandidateWalk(
                            state, demand, mask, within, cfg.enable_dl,
                            affinity=state.affinity_mask(app_id),
                        )
                    continue
                result.undeployed[container.container_id] = outcome.failure
                if cfg.enable_il:
                    dead_reason = outcome.failure
                continue

            state.deploy(container, machine, demand)
            result.placements[container.container_id] = machine

        if cfg.gang_scheduling and any(
            c.container_id in result.undeployed for c in block
        ):
            self._roll_back_block(block, state, result)

    # ------------------------------------------------------------------
    @staticmethod
    def _roll_back_block(
        block: list[Container], state: ClusterState, result: ScheduleResult
    ) -> None:
        """Gang semantics: a partially placed application is retracted.

        Already-placed siblings are evicted and every container of the
        block is reported undeployed with the reason that stopped the
        gang.  Rescue side effects (migrations of *other* containers)
        stay — those containers remain validly deployed elsewhere.
        """
        reason = next(
            result.undeployed[c.container_id]
            for c in block
            if c.container_id in result.undeployed
        )
        for container in block:
            cid = container.container_id
            if cid in result.placements:
                state.evict(cid)
                del result.placements[cid]
            result.undeployed[cid] = reason


# ----------------------------------------------------------------------
# engine-shared checkpoint/restore
# ----------------------------------------------------------------------
def engine_checkpoint(engine) -> dict:
    """Image of an engine's cross-round ledgers, for a snapshot payload.

    Shared by both engines (``engine`` exposes ``feas_cache``,
    ``machine_index``, ``rescue_kernel`` and ``parallel``): the ledgers
    are the warm state a restart would otherwise rebuild cold, and a
    cold rebuild is not only slower but *observably different* — the
    machine index reports ``index_resyncs`` telemetry on incremental
    resyncs and none on rebuilds, and the rescue memos replay stored
    ``explored`` charges — so bit-identical resumption requires
    persisting them.  The flow engine's ``last_network`` is *not*
    persisted: it is rebuilt per scheduling window and carries no
    cross-round charges.
    """
    return {
        "feas_cache": engine.feas_cache.checkpoint(),
        "machine_index": engine.machine_index.checkpoint(),
        "batch_placed": getattr(engine, "batch_placed", 0),
        "rescue_kernel": (
            engine.rescue_kernel.checkpoint()
            if engine.rescue_kernel is not None
            else None
        ),
        "parallel": (
            engine.parallel.checkpoint() if engine.parallel is not None else None
        ),
    }


def engine_restore(engine, payload: dict, state: ClusterState) -> None:
    """Adopt an :func:`engine_checkpoint` image against a restored state.

    Every ledger is rebound to the restored state's fresh uid; the
    persisted sync versions stay valid because the state checkpoint
    carries the dirty log verbatim.  Components present on only one
    side (e.g. the checkpoint was taken without a rescue kernel, or
    with a different worker count) start cold — a full resync on first
    use, never silent corruption.
    """
    engine.feas_cache.restore(payload["feas_cache"], state.state_uid)
    engine.machine_index.restore(payload["machine_index"], state.state_uid)
    if hasattr(engine, "batch_placed"):
        engine.batch_placed = payload.get("batch_placed", 0)
    kernel_image = payload.get("rescue_kernel")
    if engine.rescue_kernel is not None and kernel_image is not None:
        engine.rescue_kernel.restore(kernel_image, state)
    if engine.parallel is not None:
        engine.parallel.restore(state, payload.get("parallel"))


# ----------------------------------------------------------------------
# engine-shared rescue passes
# ----------------------------------------------------------------------
def drain_requeue(
    engine,
    requeue: list[Container],
    state: ClusterState,
    planner: RescuePlanner,
    result: ScheduleResult,
) -> None:
    """Re-place preemption victims at the end of the window.

    Victims may rescue via migration but not by preempting again —
    preemption chains are cut at depth one, which is safe because a
    victim is strictly lower priority than its preemptor.

    Shared by both engines (``engine`` exposes ``config`` and
    ``feas_cache``), for the same reason as :func:`final_repair`: the
    flow engine used to drop a victim the moment no machine admitted it
    directly, while the vectorised engine migrated to make room — on a
    tight cluster that single asymmetry makes the engines' placements
    drift apart for the rest of the run.
    """
    config = engine.config
    for container in requeue:
        demand = container.demand_vector(state.topology.resources)
        if config.enable_il and config.enable_feasibility_cache:
            mask = engine.feas_cache.feasible_mask(
                state, demand, container.app_id
            )
            result.explored += engine.feas_cache.last_recomputed
        else:
            result.explored += state.n_machines
            mask = state.feasible_mask(demand, container.app_id)
        machine = _pick_machine(state, mask, dl=True)
        if machine is None:
            outcome = planner.rescue(container, demand, allow_preemption=False)
            result.explored += outcome.explored
            if outcome.ok:
                result.migrations += outcome.migrations
                machine = outcome.machine_id
        if machine is None:
            # The victim was deployed once; retract that placement.
            result.placements.pop(container.container_id, None)
            result.undeployed[container.container_id] = FailureReason.PREEMPTED
            continue
        state.deploy(container, machine, demand)
        # A victim that lands again was migrated, in effect.
        prev = result.placements.get(container.container_id)
        result.placements[container.container_id] = machine
        if prev is not None and prev != machine:
            result.migrations += 1


def final_repair(
    engine,
    containers: list[Container],
    state: ClusterState,
    planner: RescuePlanner,
    result: ScheduleResult,
) -> None:
    """Exhaustively retry every undeployed container (Fig. 7 spirit).

    Highest priority first; each retry gets an unbounded rescue
    scan.  Preemption stays off — repairing one failure by creating
    another is not progress.

    Shared by both engines (``engine`` exposes ``config`` and
    ``feas_cache``): the repair decisions depend only on the cluster
    state, so running the identical pass from
    :class:`~repro.core.search.FlowPathSearch` keeps the engines'
    placements indistinguishable — the cross-engine property test found
    a workload where an Aladdin-only repair pass made the two diverge.
    """
    config = engine.config
    by_id = {c.container_id: c for c in containers}
    pending = sorted(
        result.undeployed,
        key=lambda cid: -by_id[cid].priority if cid in by_id else 0,
    )
    # Under gang semantics the repair must keep applications atomic:
    # retry whole app groups and retract partial successes.
    groups: list[list[int]] = []
    seen_apps: dict[int, int] = {}
    for cid in pending:
        container = by_id.get(cid)
        if container is None:
            continue
        if config.gang_scheduling:
            slot = seen_apps.get(container.app_id)
            if slot is None:
                seen_apps[container.app_id] = len(groups)
                groups.append([cid])
            else:
                groups[slot].append(cid)
        else:
            groups.append([cid])

    for group in groups:
        placed_now: list[int] = []
        failed = False
        for cid in group:
            container = by_id[cid]
            demand = container.demand_vector(state.topology.resources)
            if config.enable_il and config.enable_feasibility_cache:
                mask = engine.feas_cache.feasible_mask(
                    state, demand, container.app_id
                )
                result.explored += engine.feas_cache.last_recomputed
            else:
                result.explored += state.n_machines
                mask = state.feasible_mask(demand, container.app_id)
            machine = _pick_machine(state, mask, dl=True)
            if machine is None:
                outcome = planner.rescue(
                    container, demand, allow_preemption=False, exhaustive=True
                )
                result.explored += outcome.explored
                if outcome.ok:
                    result.migrations += outcome.migrations
                    machine = outcome.machine_id
            if machine is None:
                failed = True
                break
            state.deploy(container, machine, demand)
            result.placements[cid] = machine
            del result.undeployed[cid]
            placed_now.append(cid)
        if failed and config.gang_scheduling:
            # The container that stopped the gang kept its reason.
            failing_cid = group[len(placed_now)]
            reason = result.undeployed[failing_cid]
            for cid in placed_now:
                state.evict(cid)
                del result.placements[cid]
                result.undeployed[cid] = reason


# ----------------------------------------------------------------------
# candidate walk: the IL(+DL) fast path
# ----------------------------------------------------------------------
class _CandidateWalk:
    """Iterate one application's admitting machines, most-packed first.

    With DL, the candidate order is computed once (one sort per
    application) and walked with a pointer, charging O(1) per container;
    machines stay valid until their precomputed fill count is exhausted
    (non-within apps) or until used once (within-anti-affinity apps).
    Without DL the walk re-ranks every remaining candidate per container,
    modelling the redundant path exploration DL eliminates.
    """

    def __init__(
        self,
        state: ClusterState,
        demand: np.ndarray,
        mask: np.ndarray,
        within: bool,
        dl: bool,
        affinity: np.ndarray | None = None,
    ) -> None:
        self.state = state
        self.demand = demand
        self.within = within
        self.dl = dl
        self.affinity = affinity
        self.last_cost = 0
        ids = np.flatnonzero(mask)
        order = np.argsort(
            _scores(state, ids, affinity),
            kind="stable",
        )
        self.ids = ids[order]
        self.pos = 0
        if not within:
            # Fill counts: how many identical containers fit per machine.
            with np.errstate(divide="ignore"):
                fills = np.floor(
                    (state.available[self.ids] / demand).min(axis=1)
                ).astype(np.int64)
            self.fill = fills
        else:
            self.fill = np.ones(self.ids.size, dtype=np.int64)

    def next_machine(self) -> int | None:
        if self.dl:
            while self.pos < self.ids.size and self.fill[self.pos] <= 0:
                self.pos += 1
            self.last_cost = 1
            if self.pos >= self.ids.size:
                return None
            self.fill[self.pos] -= 1
            machine = int(self.ids[self.pos])
            if self.fill[self.pos] <= 0:
                self.pos += 1
            tele = telemetry.current()
            if tele is not None:
                tele.dl_prune_hits += 1
            return machine
        # No DL: re-rank all remaining candidates against live state
        # (the redundant work depth limiting avoids).  Each candidate is
        # examined once per container — that scan is the charged cost.
        remaining = self.ids[self.pos :][self.fill[self.pos :] > 0]
        self.last_cost = max(1, remaining.size)
        if remaining.size == 0:
            return None
        avail = self.state.available[remaining]
        feasible = (avail >= self.demand).all(axis=1)
        remaining = remaining[feasible]
        if remaining.size == 0:
            return None
        score = self.state.available[remaining, 0] * (
            self.state.n_machines + 1
        ) + remaining.astype(np.float64)
        machine = int(remaining[np.argmin(score)])
        where = np.flatnonzero(self.ids == machine)[0]
        self.fill[where] -= 1
        return machine

    def invalidate(self, machine_id: int) -> None:
        """Drop a machine whose state was changed by a rescue."""
        where = np.flatnonzero(self.ids == machine_id)
        if where.size:
            self.fill[where[0]] = 0


def _scores(
    state: ClusterState, ids: np.ndarray, affinity: np.ndarray | None
) -> np.ndarray:
    """The total candidate order: affinity tier, then packing, then id.

    Machines hosting an affine application rank before all others (the
    soft Borg-style preference); within a tier the order is most-packed
    first with the machine id as the final tie-break, which keeps the
    order total and both engines reproducible.  The key and tier terms
    are shared with :mod:`repro.core.machindex`, whose incrementally
    maintained order must stay bit-identical to this scratch scoring.
    """
    score = packing_keys(state, ids)
    if affinity is not None:
        score = score + np.where(
            affinity[ids], 0.0, affinity_tier(state.n_machines)
        )
    return score


def _pick_machine(
    state: ClusterState,
    mask: np.ndarray,
    dl: bool,
    affinity: np.ndarray | None = None,
) -> int | None:
    """Best machine under the packed-first total order, or ``None``.

    With DL a single ``argmin`` suffices; without DL the full candidate
    ordering is materialised first (same winner, more work) — the honest
    cost model for the ablation.
    """
    ids = np.flatnonzero(mask)
    if ids.size == 0:
        return None
    score = _scores(state, ids, affinity)
    if dl:
        tele = telemetry.current()
        if tele is not None:
            tele.dl_prune_hits += 1
        return int(ids[np.argmin(score)])
    ranked = ids[np.argsort(score, kind="stable")]
    return int(ranked[0])


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _group_blocks(containers: list[Container]) -> list[list[Container]]:
    """Group consecutive containers of the same application."""
    blocks: list[list[Container]] = []
    for c in containers:
        if blocks and blocks[-1][0].app_id == c.app_id:
            blocks[-1].append(c)
        else:
            blocks.append([c])
    return blocks


def _derive_weights_for(
    containers: list[Container],
    config: AladdinConfig,
    base: float | None = None,
) -> dict[int, float]:
    """Equation 3–5 weights for the priority classes present.

    ``base`` overrides the config's weight-ratio floor (used by the
    preemption guard, which wants the minimal compliant weights).
    """
    # Weight derivation needs per-class demand ranges; containers carry
    # them directly.
    from repro.cluster.container import Application

    seen: dict[tuple[int, float], Application] = {}
    for c in containers:
        key = (c.priority, c.cpu)
        if key not in seen:
            seen[key] = Application(
                app_id=len(seen),
                n_containers=1,
                cpu=c.cpu,
                mem_gb=c.mem_gb,
                priority=c.priority,
            )
    weights = derive_priority_weights(
        list(seen.values()),
        base=config.priority_weight_base if base is None else base,
    )
    return weights or {0: 1.0}
