"""CSV round-trip for traces.

Two files per trace: ``<stem>.apps.csv`` (one row per application) and
``<stem>.conflicts.csv`` (one row per cross-application conflict pair).
The format is deliberately trivial so traces can be inspected, diffed
and regenerated without the library.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.cluster.container import Application
from repro.trace.schema import Trace, TraceConfig

_APP_FIELDS = [
    "app_id",
    "n_containers",
    "cpu",
    "mem_gb",
    "priority",
    "anti_affinity_within",
    "anti_affinity_scope",
    "affinities",
    "name",
]


def save_trace(trace: Trace, stem: str | Path) -> tuple[Path, Path]:
    """Write ``trace`` next to ``stem``; returns the two file paths."""
    stem = Path(stem)
    stem.parent.mkdir(parents=True, exist_ok=True)
    apps_path = stem.with_suffix(".apps.csv")
    conflicts_path = stem.with_suffix(".conflicts.csv")

    with apps_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_APP_FIELDS)
        for app in trace.applications:
            writer.writerow(
                [
                    app.app_id,
                    app.n_containers,
                    app.cpu,
                    app.mem_gb,
                    app.priority,
                    int(app.anti_affinity_within),
                    app.anti_affinity_scope,
                    " ".join(str(a) for a in sorted(app.affinities)),
                    app.name,
                ]
            )

    with conflicts_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["app_a", "app_b"])
        for a, b in sorted(trace.constraints.conflicting_pairs()):
            writer.writerow([a, b])

    return apps_path, conflicts_path


def load_trace(stem: str | Path, config: TraceConfig | None = None) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    ``config`` is attached verbatim (it is metadata only at this point);
    a default config is used when omitted.
    """
    stem = Path(stem)
    apps_path = stem.with_suffix(".apps.csv")
    conflicts_path = stem.with_suffix(".conflicts.csv")

    conflicts: dict[int, set[int]] = {}
    with conflicts_path.open(newline="") as fh:
        for line, row in enumerate(csv.DictReader(fh), start=2):
            try:
                a, b = int(row["app_a"]), int(row["app_b"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{conflicts_path.name}:{line}: garbled conflict row "
                    f"{row!r}"
                ) from exc
            conflicts.setdefault(a, set()).add(b)
            conflicts.setdefault(b, set()).add(a)

    apps: list[Application] = []
    with apps_path.open(newline="") as fh:
        for line, row in enumerate(csv.DictReader(fh), start=2):
            # csv.DictReader maps short rows to None values; a truncated
            # or garbled row must name its line, not surface as a bare
            # int()/float() error from deep inside the parse.
            try:
                app_id = int(row["app_id"])
                apps.append(
                    Application(
                        app_id=app_id,
                        n_containers=int(row["n_containers"]),
                        cpu=float(row["cpu"]),
                        mem_gb=float(row["mem_gb"]),
                        priority=int(row["priority"]),
                        anti_affinity_within=bool(
                            int(row["anti_affinity_within"])
                        ),
                        anti_affinity_scope=row.get("anti_affinity_scope")
                        or "machine",
                        conflicts=frozenset(conflicts.get(app_id, ())),
                        affinities=frozenset(
                            int(a)
                            for a in (row.get("affinities") or "").split()
                        ),
                        name=row.get("name") or "",
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{apps_path.name}:{line}: truncated or garbled "
                    f"application row: {exc}"
                ) from exc
    if not apps:
        raise ValueError(
            f"{apps_path.name}: no application rows (empty trace)"
        )
    apps.sort(key=lambda a: a.app_id)
    for i, app in enumerate(apps):
        if app.app_id != i:
            raise ValueError(f"application ids are not dense: missing {i}")
    return Trace(config=config or TraceConfig(), applications=apps)
