"""Container arrival orderings (Section V.C/V.D).

The evaluation replays the trace under four arrival characteristics:

* **CHP** — containers with high priorities first;
* **CLP** — containers with low priorities first;
* **CLA** — containers with a *large* number of anti-affinity
  constraints first;
* **CSA** — containers with a *small* number of anti-affinity
  constraints first.

Orderings operate at application granularity (an LLA's containers are
submitted together, Section II.A) and are stable, so ties keep trace
order and every ordering is a permutation of the same container set.
"""

from __future__ import annotations

import enum

from repro.cluster.container import Application, Container
from repro.trace.schema import Trace


class ArrivalOrder(enum.Enum):
    """The four arrival characteristics plus raw trace order."""

    TRACE = "trace"
    CHP = "chp"  # high priorities first
    CLP = "clp"  # low priorities first
    CLA = "cla"  # many anti-affinity constraints first
    CSA = "csa"  # few anti-affinity constraints first


def anti_affinity_degree(app: Application, trace: Trace) -> int:
    """Number of containers ``app`` cannot be co-located with.

    Within-app anti-affinity contributes the app's other instances;
    cross-application conflicts contribute the partners' full instance
    counts.  This is the quantity behind the paper's "several LLAs cannot
    be co-located with at least other 5,000 containers".
    """
    degree = 0
    if app.anti_affinity_within:
        degree += app.n_containers - 1
    for other in app.conflicts:
        degree += trace.app(other).n_containers
    return degree


def order_applications(trace: Trace, order: ArrivalOrder) -> list[Application]:
    """Applications of ``trace`` under the given arrival characteristic."""
    apps = list(trace.applications)
    if order is ArrivalOrder.TRACE:
        return apps
    if order is ArrivalOrder.CHP:
        return sorted(apps, key=lambda a: -a.priority)
    if order is ArrivalOrder.CLP:
        return sorted(apps, key=lambda a: a.priority)
    if order is ArrivalOrder.CLA:
        return sorted(apps, key=lambda a: -anti_affinity_degree(a, trace))
    if order is ArrivalOrder.CSA:
        return sorted(apps, key=lambda a: anti_affinity_degree(a, trace))
    raise ValueError(f"unknown arrival order: {order!r}")


def order_containers(trace: Trace, order: ArrivalOrder) -> list[Container]:
    """Containers of ``trace`` in arrival order (app blocks kept intact)."""
    by_app: dict[int, list[Container]] = {}
    for c in trace.containers:
        by_app.setdefault(c.app_id, []).append(c)
    out: list[Container] = []
    for app in order_applications(trace, order):
        out.extend(by_app[app.app_id])
    return out
