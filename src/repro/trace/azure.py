"""Azure Functions 2019 trace front-end.

The public Azure Functions dataset (Shahrad et al., *Serverless in the
Wild*, ATC 2020; released at
https://github.com/Azure/AzurePublicDataset) records two weeks of
production serverless traffic: per-function invocation counts in
1,440 one-minute bins per day, per-function execution-duration
statistics, and per-app allocated-memory statistics.  Three CSVs per
day::

    invocations_per_function_md.anon.d<DD>.csv
        HashOwner, HashApp, HashFunction, Trigger, 1, 2, ..., 1440
    function_durations_percentiles.anon.d<DD>.csv
        HashOwner, HashApp, HashFunction, Average, Count, Minimum,
        Maximum, percentile_Average_0, ..., percentile_Average_100
    app_memory_percentiles.anon.d<DD>.csv
        HashOwner, HashApp, SampleCount, AverageAllocatedMb,
        AverageAllocatedMb_pct1, ..., AverageAllocatedMb_pct100

This module parses those files into :class:`AzureDataset` — the
normalized form :mod:`repro.trace.scenarios` maps onto the
reproduction's workload model — caches the parse as a compact ``.npz``
next to the CSVs (the raw invocation file is ~GB-scale; the cache
reloads in milliseconds), and, crucially, ships a **seeded synthetic
fallback** calibrated to the dataset's published distributions, so CI
and offline hosts exercise the same scenario machinery with zero
network access: :func:`azure_dataset` returns the real data when a
directory is given and the fallback otherwise, and everything
downstream is deterministic in (source, seed).

Published statistics the fallback is calibrated to (ATC '20 §3):

* daily invocations per function span **eight orders of magnitude**,
  heavy-tailed — the most popular 18.6 % of apps drive 99.6 % of all
  invocations (log₁₀ daily invocations ≈ normal, heavy right tail);
* triggers: ~55 % HTTP, ~16 % timer (periodic, phase-locked spikes),
  ~15 % queue, the rest event/storage/orchestration;
* aggregate load is **diurnal** — smooth daytime peak over a nighttime
  trough (roughly 2:1), which is exactly the curve the ``diurnal``
  scenario replays;
* 50 % of functions average < 1 s execution, ~96 % < 60 s (log-normal);
* allocated memory: ~170 MB median, 90 % below ~400 MB, capped at the
  platform's 1.5 GB.
"""

from __future__ import annotations

import csv
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: minutes per trace day — the invocation CSV has one column per minute.
MINUTES_PER_DAY = 1440

#: trigger mix of the published dataset (ATC '20 Fig. 2), used by the
#: synthetic fallback; shares are fractions of *functions*.
TRIGGER_SHARES = (
    ("http", 0.55),
    ("timer", 0.16),
    ("queue", 0.15),
    ("storage", 0.07),
    ("event", 0.04),
    ("orchestration", 0.03),
)

#: defaults for functions the duration/memory files do not cover (the
#: real dataset's joins are incomplete); published medians.
DEFAULT_DURATION_MS = 600.0
DEFAULT_MEMORY_MB = 170.0

_INVOCATIONS_FILE = "invocations_per_function_md.anon.d{day:02d}.csv"
_DURATIONS_FILE = "function_durations_percentiles.anon.d{day:02d}.csv"
_MEMORY_FILE = "app_memory_percentiles.anon.d{day:02d}.csv"


class AzureTraceError(ValueError):
    """A dataset file is missing, truncated or garbled."""


@dataclass(frozen=True)
class AzureFunction:
    """One serverless function: identity, trigger, load and footprint."""

    owner: str
    app: str
    function: str
    trigger: str
    #: per-minute invocation counts, shape ``(MINUTES_PER_DAY,)``
    invocations: np.ndarray
    #: average execution duration in milliseconds
    duration_ms: float
    #: average allocated memory in MB
    memory_mb: float

    @property
    def daily_invocations(self) -> int:
        return int(self.invocations.sum())


@dataclass
class AzureDataset:
    """A normalized one-day slice of the Azure Functions trace."""

    functions: list[AzureFunction]
    #: provenance: ``azure-2019:<dir>`` or ``synthetic-fallback:seed=N``
    source: str = "unknown"

    def __post_init__(self) -> None:
        for fn in self.functions:
            if fn.invocations.shape != (MINUTES_PER_DAY,):
                raise AzureTraceError(
                    f"function {fn.function!r} has "
                    f"{fn.invocations.shape[0]} minute bins, expected "
                    f"{MINUTES_PER_DAY}"
                )

    @property
    def n_functions(self) -> int:
        return len(self.functions)

    @property
    def total_invocations(self) -> int:
        return sum(f.daily_invocations for f in self.functions)

    def minute_curve(self) -> np.ndarray:
        """Aggregate invocations per minute — the diurnal load curve."""
        if not self.functions:
            return np.zeros(MINUTES_PER_DAY, dtype=np.int64)
        return np.sum([f.invocations for f in self.functions], axis=0)

    def top_functions(self, n: int) -> list[AzureFunction]:
        """The ``n`` busiest functions by daily invocation count."""
        return sorted(
            self.functions, key=lambda f: -f.daily_invocations
        )[:n]


# ----------------------------------------------------------------------
# real-dataset parsing + cache
# ----------------------------------------------------------------------
def _parse_float(row: dict, key: str, path: Path, line: int) -> float:
    raw = row.get(key)
    if raw is None or raw == "":
        raise AzureTraceError(
            f"{path.name}:{line}: missing column {key!r}"
        )
    try:
        return float(raw)
    except ValueError as exc:
        raise AzureTraceError(
            f"{path.name}:{line}: garbled {key}={raw!r}"
        ) from exc


def _read_rows(path: Path, required: tuple[str, ...]) -> list[dict]:
    if not path.exists():
        raise AzureTraceError(f"dataset file missing: {path}")
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        header = reader.fieldnames or []
        missing = [c for c in required if c not in header]
        if missing:
            raise AzureTraceError(
                f"{path.name}: header lacks columns {missing} "
                f"(got {header[:6]}...)"
            )
        rows = []
        for line, row in enumerate(reader, start=2):
            # csv.DictReader maps short rows to None values — a
            # truncated tail row must fail loudly, not parse as zeros.
            if any(row.get(c) is None for c in required):
                raise AzureTraceError(
                    f"{path.name}:{line}: truncated row"
                )
            row["_line"] = line
            rows.append(row)
    return rows


def load_invocations(path: str | Path) -> list[dict]:
    """Parse one ``invocations_per_function_md`` CSV.

    Returns one record per function: identity, trigger and the
    1,440-minute count vector.  Garbled counts and truncated rows raise
    :class:`AzureTraceError` with file/line context.
    """
    path = Path(path)
    minute_cols = [str(m) for m in range(1, MINUTES_PER_DAY + 1)]
    required = ("HashOwner", "HashApp", "HashFunction", "Trigger",
                minute_cols[0], minute_cols[-1])
    out = []
    for row in _read_rows(path, required):
        line = row["_line"]
        counts = np.empty(MINUTES_PER_DAY, dtype=np.int64)
        for i, col in enumerate(minute_cols):
            raw = row.get(col)
            if raw is None:
                raise AzureTraceError(f"{path.name}:{line}: truncated row")
            try:
                counts[i] = int(float(raw))
            except ValueError as exc:
                raise AzureTraceError(
                    f"{path.name}:{line}: garbled minute {col}={raw!r}"
                ) from exc
        if (counts < 0).any():
            raise AzureTraceError(
                f"{path.name}:{line}: negative invocation count"
            )
        out.append(
            {
                "owner": row["HashOwner"],
                "app": row["HashApp"],
                "function": row["HashFunction"],
                "trigger": row["Trigger"],
                "invocations": counts,
            }
        )
    if not out:
        raise AzureTraceError(f"{path.name}: no invocation rows (empty trace)")
    return out


def load_durations(path: str | Path) -> dict[tuple[str, str, str], float]:
    """(owner, app, function) → average duration in ms."""
    path = Path(path)
    out: dict[tuple[str, str, str], float] = {}
    for row in _read_rows(
        path, ("HashOwner", "HashApp", "HashFunction", "Average")
    ):
        value = _parse_float(row, "Average", path, row["_line"])
        if value < 0:
            raise AzureTraceError(
                f"{path.name}:{row['_line']}: negative duration {value}"
            )
        out[(row["HashOwner"], row["HashApp"], row["HashFunction"])] = value
    return out


def load_memory(path: str | Path) -> dict[tuple[str, str], float]:
    """(owner, app) → average allocated memory in MB."""
    path = Path(path)
    out: dict[tuple[str, str], float] = {}
    for row in _read_rows(
        path, ("HashOwner", "HashApp", "AverageAllocatedMb")
    ):
        value = _parse_float(row, "AverageAllocatedMb", path, row["_line"])
        if value < 0:
            raise AzureTraceError(
                f"{path.name}:{row['_line']}: negative memory {value}"
            )
        out[(row["HashOwner"], row["HashApp"])] = value
    return out


def _cache_path(root: Path, day: int) -> Path:
    return root / f"azure_d{day:02d}.cache.npz"


def _source_files(root: Path, day: int) -> list[Path]:
    return [
        root / _INVOCATIONS_FILE.format(day=day),
        root / _DURATIONS_FILE.format(day=day),
        root / _MEMORY_FILE.format(day=day),
    ]


def _save_cache(path: Path, dataset: AzureDataset) -> None:
    fns = dataset.functions
    np.savez_compressed(
        path,
        owner=np.array([f.owner for f in fns]),
        app=np.array([f.app for f in fns]),
        function=np.array([f.function for f in fns]),
        trigger=np.array([f.trigger for f in fns]),
        invocations=np.stack([f.invocations for f in fns]),
        duration_ms=np.array([f.duration_ms for f in fns]),
        memory_mb=np.array([f.memory_mb for f in fns]),
        source=np.array(dataset.source),
    )


def _load_cache(path: Path) -> AzureDataset:
    with np.load(path, allow_pickle=False) as z:
        functions = [
            AzureFunction(
                owner=str(z["owner"][i]),
                app=str(z["app"][i]),
                function=str(z["function"][i]),
                trigger=str(z["trigger"][i]),
                invocations=z["invocations"][i].astype(np.int64),
                duration_ms=float(z["duration_ms"][i]),
                memory_mb=float(z["memory_mb"][i]),
            )
            for i in range(z["owner"].shape[0])
        ]
        return AzureDataset(functions=functions, source=str(z["source"]))


def load_azure_dataset(
    root: str | Path, day: int = 1, cache: bool = True
) -> AzureDataset:
    """Parse (or reload from cache) one day of the real dataset.

    ``root`` is the directory holding the three per-day CSVs.  With
    ``cache`` (the default) the parse is memoised as
    ``azure_d<DD>.cache.npz`` in the same directory; the cache is
    invalidated whenever any source CSV is newer than it.  The download
    itself is **never** automated — see docs/WORKLOADS.md for the
    dataset URL and the fallback semantics.
    """
    root = Path(root)
    sources = _source_files(root, day)
    cpath = _cache_path(root, day)
    if cache and cpath.exists():
        mtime = cpath.stat().st_mtime
        if all(
            not s.exists() or s.stat().st_mtime <= mtime for s in sources
        ):
            try:
                return _load_cache(cpath)
            except (OSError, KeyError, ValueError):
                pass  # corrupt cache: fall through to a fresh parse

    records = load_invocations(sources[0])
    durations = load_durations(sources[1]) if sources[1].exists() else {}
    memory = load_memory(sources[2]) if sources[2].exists() else {}
    functions = [
        AzureFunction(
            owner=r["owner"],
            app=r["app"],
            function=r["function"],
            trigger=r["trigger"],
            invocations=r["invocations"],
            duration_ms=durations.get(
                (r["owner"], r["app"], r["function"]), DEFAULT_DURATION_MS
            ),
            memory_mb=memory.get((r["owner"], r["app"]), DEFAULT_MEMORY_MB),
        )
        for r in records
    ]
    dataset = AzureDataset(functions=functions, source=f"azure-2019:{root}")
    if cache:
        try:
            _save_cache(cpath, dataset)
        except OSError:
            pass  # read-only dataset dir: serve uncached
    return dataset


# ----------------------------------------------------------------------
# seeded synthetic fallback
# ----------------------------------------------------------------------
def _hash_name(seed: int, kind: str, index: int) -> str:
    """Deterministic hex identifier shaped like the dataset's hashes."""
    digest = hashlib.sha256(f"{seed}:{kind}:{index}".encode()).hexdigest()
    return digest[:16]


def synthetic_azure_dataset(
    seed: int = 0,
    n_functions: int = 200,
    trough_to_peak: float = 0.45,
) -> AzureDataset:
    """A seeded stand-in matching the dataset's published distributions.

    Fully deterministic in ``(seed, n_functions)``: same arguments →
    bit-identical invocation matrices, durations and memory draws, which
    is what lets the scenario differential tests and the checkpoint
    fingerprint treat the fallback exactly like a file on disk.

    * log₁₀(daily invocations) ~ N(2.0, 1.2) clipped to [0, 7] — the
      heavy tail where a handful of functions dominate total load;
    * non-timer functions spread their mass over a **diurnal** rate
      curve (trough ``trough_to_peak`` of peak, per-function phase
      jitter) sampled as a Poisson count per minute;
    * timer functions fire on a fixed period (1/5/15/60/1440 min) with
      a per-function phase — the metronomic spikes of the real data;
    * duration: log-normal around ~600 ms with a minutes-long tail,
      clipped to [1 ms, 10 min];
    * memory: log-normal around ~170 MB, clipped to [64 MB, 1536 MB].
    """
    if n_functions < 1:
        raise AzureTraceError("n_functions must be >= 1")
    rng = np.random.default_rng(seed)
    minutes = np.arange(MINUTES_PER_DAY)

    names = np.array([t for t, _ in TRIGGER_SHARES])
    shares = np.array([s for _, s in TRIGGER_SHARES])
    triggers = rng.choice(names, size=n_functions, p=shares / shares.sum())

    daily = np.power(
        10.0, np.clip(rng.normal(2.0, 1.2, n_functions), 0.0, 7.0)
    )
    durations = np.clip(
        rng.lognormal(np.log(DEFAULT_DURATION_MS), 1.6, n_functions),
        1.0, 600_000.0,
    )
    memory = np.clip(
        rng.lognormal(np.log(DEFAULT_MEMORY_MB), 0.7, n_functions),
        64.0, 1536.0,
    )

    functions: list[AzureFunction] = []
    for i in range(n_functions):
        if triggers[i] == "timer":
            period = int(rng.choice([1, 5, 15, 60, 1440],
                                    p=[0.15, 0.3, 0.3, 0.2, 0.05]))
            phase = int(rng.integers(period))
            fires = ((minutes % period) == phase)
            per_fire = max(1, round(daily[i] / max(1, fires.sum())))
            counts = np.where(fires, per_fire, 0).astype(np.int64)
        else:
            # Per-function phase jitter stays within ±2 h of the shared
            # daytime peak — spread any wider, the per-function
            # sinusoids decorrelate and the *aggregate* curve flattens,
            # losing the diurnal swing the dataset actually shows.
            phase = rng.uniform(-120.0, 120.0)
            shape = 1.0 + (1.0 - trough_to_peak) * np.sin(
                2.0 * np.pi * (minutes - phase) / MINUTES_PER_DAY
            )
            rate = daily[i] * shape / shape.sum()
            counts = rng.poisson(rate).astype(np.int64)
        functions.append(
            AzureFunction(
                owner=_hash_name(seed, "owner", i // 4),
                app=_hash_name(seed, "app", i // 2),
                function=_hash_name(seed, "fn", i),
                trigger=str(triggers[i]),
                invocations=counts,
                duration_ms=float(durations[i]),
                memory_mb=float(memory[i]),
            )
        )
    return AzureDataset(
        functions=functions, source=f"synthetic-fallback:seed={seed}"
    )


def azure_dataset(
    path: str | Path | None = None,
    *,
    seed: int = 0,
    day: int = 1,
    n_functions: int = 200,
) -> AzureDataset:
    """The front door: real data when available, seeded fallback otherwise.

    ``path`` names the dataset directory; ``None`` (or a directory whose
    invocation CSV is absent) selects :func:`synthetic_azure_dataset`,
    so offline hosts and CI never attempt a download.  Passing a ``path``
    whose directory exists but lacks the CSVs raises — a typo'd path
    silently falling back would fake a real-trace run.
    """
    if path is None:
        return synthetic_azure_dataset(seed=seed, n_functions=n_functions)
    return load_azure_dataset(path, day=day)
