"""Workload statistics (the Fig. 8 panels).

:func:`workload_stats` computes everything the paper reports about its
trace so the Fig. 8 benchmark can print paper-vs-measured rows:
the per-application container-count CDF (Fig. 8a), the constraint
counts (Fig. 8b) and the headline fractions from Section V.A.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.arrival import anti_affinity_degree
from repro.trace.schema import Trace


@dataclass(frozen=True)
class WorkloadStats:
    """Summary statistics of one trace."""

    n_apps: int
    n_containers: int
    n_anti_affinity_apps: int
    n_priority_apps: int
    frac_single_instance: float
    frac_lt_50_containers: float
    max_containers_per_app: int
    max_cpu_demand: float
    max_mem_demand_gb: float
    max_anti_affinity_degree: int
    mean_cpu_demand: float

    def as_rows(self) -> list[tuple[str, float]]:
        """(metric, value) rows for report rendering."""
        return [
            ("total applications", self.n_apps),
            ("total containers", self.n_containers),
            ("applications with anti-affinity", self.n_anti_affinity_apps),
            ("applications with priority", self.n_priority_apps),
            ("fraction single-instance", self.frac_single_instance),
            ("fraction < 50 containers", self.frac_lt_50_containers),
            ("max containers per app", self.max_containers_per_app),
            ("max CPU demand", self.max_cpu_demand),
            ("max memory demand (GB)", self.max_mem_demand_gb),
            ("max anti-affinity degree", self.max_anti_affinity_degree),
            ("mean CPU demand", self.mean_cpu_demand),
        ]


def workload_stats(trace: Trace) -> WorkloadStats:
    """Compute the Fig. 8 / Section V.A statistics for ``trace``."""
    sizes = np.array([a.n_containers for a in trace.applications])
    cpus = np.array([a.cpu for a in trace.applications])
    mems = np.array([a.mem_gb for a in trace.applications])
    weights = sizes / sizes.sum()
    n_aa = sum(1 for a in trace.applications if a.has_anti_affinity)
    n_prio = sum(1 for a in trace.applications if a.priority > 0)
    max_degree = max(
        (anti_affinity_degree(a, trace) for a in trace.applications), default=0
    )
    return WorkloadStats(
        n_apps=trace.n_apps,
        n_containers=trace.n_containers,
        n_anti_affinity_apps=n_aa,
        n_priority_apps=n_prio,
        frac_single_instance=float((sizes == 1).mean()),
        frac_lt_50_containers=float((sizes < 50).mean()),
        max_containers_per_app=int(sizes.max()),
        max_cpu_demand=float(cpus.max()),
        max_mem_demand_gb=float(mems.max()),
        max_anti_affinity_degree=int(max_degree),
        mean_cpu_demand=float((cpus * weights).sum()),
    )


def container_count_cdf(
    trace: Trace, points: list[int] | None = None
) -> list[tuple[int, float]]:
    """CDF of containers-per-application at the given size points (Fig. 8a).

    Returns (size, fraction of applications with n_containers <= size).
    """
    sizes = np.sort(np.array([a.n_containers for a in trace.applications]))
    if points is None:
        points = sorted(
            {1, 2, 5, 10, 50, 100, 500, 1000, 2000, int(sizes.max())}
        )
    n = sizes.size
    return [
        (p, float(np.searchsorted(sizes, p, side="right")) / n) for p in points
    ]
