"""Parser for the open-source Alibaba cluster trace format.

The paper evaluates on an *internal* Alibaba trace; Alibaba also
publishes cluster data (https://github.com/alibaba/clusterdata, cited as
[36]) whose 2018 edition ships ``container_meta.csv`` with columns::

    container_id, machine_id, time_stamp, app_du, status,
    cpu_request, cpu_limit, mem_size

``app_du`` is the application deploy-unit — exactly the paper's LLA
grouping; ``cpu_request`` is in centi-cores (100 = 1 core) and
``mem_size`` in GB.  This module turns such a file into the
reproduction's :class:`~repro.trace.schema.Trace`.

The public trace carries **no anti-affinity or priority metadata** (the
paper's constraint statistics come from the internal system), so the
loader can optionally *synthesize* constraints with the same calibrated
ratios the synthetic generator uses — making real container/application
shapes combinable with paper-faithful constraint structure.
"""

from __future__ import annotations

import csv
from collections import Counter, defaultdict
from pathlib import Path

import numpy as np

from repro.cluster.container import Application
from repro.trace.schema import Trace, TraceConfig

#: container_meta.csv columns (2018 edition, no header row in the data).
CONTAINER_META_COLUMNS = (
    "container_id",
    "machine_id",
    "time_stamp",
    "app_du",
    "status",
    "cpu_request",
    "cpu_limit",
    "mem_size",
)


def load_container_meta(
    path: str | Path,
    has_header: bool | None = None,
    max_cpu: float = 16.0,
    max_mem_gb: float = 32.0,
) -> list[Application]:
    """Parse ``container_meta.csv`` into applications.

    Containers are grouped by ``app_du``; each application's demand is
    the per-container *mode* of its members' requests (the trace is
    overwhelmingly isomorphic within a deploy-unit, matching the
    paper's IL assumption), clipped to the paper's maxima.

    ``has_header``: autodetected when ``None`` (the published file has
    no header; exports often add one).
    """
    path = Path(path)
    rows: list[dict[str, str]] = []
    with path.open(newline="") as fh:
        sample = fh.readline()
        if has_header is None:
            has_header = "container_id" in sample
        fh.seek(0)
        if has_header:
            reader = csv.DictReader(fh)
        else:
            reader = csv.DictReader(fh, fieldnames=CONTAINER_META_COLUMNS)
        for row in reader:
            if not row.get("app_du"):
                continue
            rows.append(row)

    per_app: dict[str, list[tuple[float, float]]] = defaultdict(list)
    for row in rows:
        try:
            cpu = float(row["cpu_request"] or 0) / 100.0  # centi-cores
            mem = float(row["mem_size"] or 0)
        except ValueError as exc:
            raise ValueError(f"malformed row {row!r}") from exc
        if cpu <= 0:
            cpu = 1.0
        if mem <= 0:
            mem = 2.0 * cpu
        per_app[row["app_du"]].append(
            (min(cpu, max_cpu), min(mem, max_mem_gb))
        )

    apps: list[Application] = []
    for app_id, (du, demands) in enumerate(sorted(per_app.items())):
        cpu = Counter(d[0] for d in demands).most_common(1)[0][0]
        mem = Counter(d[1] for d in demands).most_common(1)[0][0]
        apps.append(
            Application(
                app_id=app_id,
                n_containers=len(demands),
                cpu=cpu,
                mem_gb=mem,
                name=du,
            )
        )
    return apps


def load_alibaba_trace(
    path: str | Path,
    synthesize_constraints: bool = True,
    config: TraceConfig | None = None,
    seed: int = 0,
) -> Trace:
    """Load a ``container_meta.csv`` file as a reproduction trace.

    With ``synthesize_constraints`` (the default, since the public data
    carries none), anti-affinity and priority are sampled onto the real
    application shapes with the same calibrated ratios as
    :func:`repro.trace.generator.generate_trace` — ~72 % of LLAs
    constrained, ~16 % with elevated priority, within-app spreading for
    a share of the multi-instance apps, and an interference structure
    between low-demand and high-demand applications.
    """
    apps = load_container_meta(path)
    if config is None:
        config = TraceConfig(
            scale=max(
                1e-6, min(1.0, sum(a.n_containers for a in apps) / 100_000)
            ),
            seed=seed,
        )
    if synthesize_constraints and apps:
        apps = _synthesize_constraints(apps, config, seed)
    return Trace(config=config, applications=apps)


def _synthesize_constraints(
    apps: list[Application], config: TraceConfig, seed: int
) -> list[Application]:
    """Re-sample constraint structure onto real application shapes."""
    from repro.trace.generator import _assign_anti_affinity, _assign_priorities

    rng = np.random.default_rng(seed)
    sizes = np.array([a.n_containers for a in apps], dtype=np.int64)
    cpus = np.array([a.cpu for a in apps], dtype=np.float64)
    priorities = _assign_priorities(rng, _sized_config(config, len(apps)), sizes, cpus)
    within, conflicts, _ = _assign_anti_affinity(
        rng, _sized_config(config, len(apps)), sizes, priorities, cpus
    )
    return [
        Application(
            app_id=a.app_id,
            n_containers=a.n_containers,
            cpu=float(cpus[i]),
            mem_gb=a.mem_gb,
            priority=int(priorities[i]),
            anti_affinity_within=bool(within[i]),
            conflicts=frozenset(conflicts[i]),
            name=a.name,
        )
        for i, a in enumerate(apps)
    ]


def _sized_config(config: TraceConfig, n_apps: int) -> TraceConfig:
    """A config whose derived ``n_apps`` matches the loaded data."""
    from dataclasses import replace

    scale = max(1e-6, min(1.0, n_apps / 13056))
    return replace(config, scale=scale)
