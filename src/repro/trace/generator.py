"""Synthetic Alibaba-like trace generation.

The sampler is calibrated to the published statistics of the paper's
trace (Fig. 8 and Section V.A/V.D):

1. **Instance counts** — a point mass at 1 (64 % of LLAs), a light
   geometric body, a log-uniform mid tail and a handful of >2,000
   container giants, then a deterministic tail-rescaling pass that pins
   the total container count to the target (the paper's "about
   100,000").
2. **Demands** — per-application CPU from the power-of-two distribution
   in :mod:`repro.trace.schema`; memory is 2 GB per CPU (max demand
   16 CPU / 32 GB as in the paper).
3. **Priorities** — ~16 % of LLAs elevated, biased toward larger
   applications with larger demands ("LLAs with higher priorities always
   have more instances and larger resource requirements", Section V.D).
4. **Anti-affinity** — ~72 % of LLAs: every multi-instance constrained
   app gets within-app anti-affinity; cross-application conflicts are
   sampled among constrained apps, and a few high-priority giants are
   made incompatible with ≥5,000 containers' worth of other LLAs.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.container import Application
from repro.trace.schema import Trace, TraceConfig


def generate_trace(config: TraceConfig | None = None, **overrides) -> Trace:
    """Generate a deterministic synthetic trace.

    ``overrides`` are convenience keyword overrides for
    :class:`~repro.trace.schema.TraceConfig` fields, e.g.
    ``generate_trace(scale=0.1, seed=7)``.
    """
    if config is None:
        config = TraceConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a TraceConfig or keyword overrides, not both")
    rng = np.random.default_rng(config.seed)

    sizes = _sample_sizes(rng, config)
    cpus = rng.choice(config.cpu_values, size=config.n_apps, p=config.cpu_probs).astype(
        np.float64
    )
    priorities = _assign_priorities(rng, config, sizes, cpus)
    within, conflicts, frozen = _assign_anti_affinity(
        rng, config, sizes, priorities, cpus
    )
    cpus = _calibrate_demand(cpus, sizes, config, frozen=frozen)

    apps = [
        Application(
            app_id=i,
            n_containers=int(sizes[i]),
            cpu=float(cpus[i]),
            mem_gb=float(cpus[i]) * 2.0,
            priority=int(priorities[i]),
            anti_affinity_within=bool(within[i]),
            conflicts=frozenset(conflicts[i]),
            name=f"lla-{i:05d}",
        )
        for i in range(config.n_apps)
    ]
    return Trace(config=config, applications=apps)


# ----------------------------------------------------------------------
# instance counts
# ----------------------------------------------------------------------
def _sample_sizes(rng: np.random.Generator, config: TraceConfig) -> np.ndarray:
    """Sample per-application container counts, pinned to the target total."""
    n = config.n_apps
    sizes = np.ones(n, dtype=np.int64)
    bucket = rng.random(n)

    multi = bucket >= config.frac_single
    # Split the multi-instance mass into body / mid tail / giants.
    # Shares are relative to the whole population.
    body = multi & (bucket < config.frac_single + 0.26)
    mid = multi & ~body & (bucket < config.frac_single + 0.26 + 0.095)
    giant = multi & ~body & ~mid

    # Body: geometric on [2, 10].
    sizes[body] = 2 + np.minimum(rng.geometric(0.35, body.sum()) - 1, 8)
    # Mid tail: log-uniform on [11, 600].
    if mid.any():
        lo, hi = np.log(11.0), np.log(600.0)
        sizes[mid] = np.exp(rng.uniform(lo, hi, mid.sum())).astype(np.int64)
    # Giants: the paper's "a few LLAs are composed of more than 2,000
    # containers".  Keep their count tiny and independent of the mid mass.
    n_giants = max(1, round(n * 0.0004))
    giant_ids = np.flatnonzero(giant)
    if giant_ids.size:
        chosen = giant_ids[:n_giants]
        rest = giant_ids[n_giants:]
        # Giant size scales with the workload so small-scale traces keep
        # a proportionally dominant largest app.
        lo_sz = max(20, round(2001 * max(config.scale, 0.01)))
        hi_sz = max(lo_sz + 1, round(2601 * max(config.scale, 0.01)))
        sizes[chosen] = rng.integers(lo_sz, hi_sz, size=chosen.size)
        if rest.size:
            lo, hi = np.log(11.0), np.log(600.0)
            sizes[rest] = np.exp(rng.uniform(lo, hi, rest.size)).astype(np.int64)
        protected = chosen
    else:
        protected = np.array([], dtype=np.int64)

    return _pin_total(sizes, config.target_containers, protected)


def _pin_total(
    sizes: np.ndarray, target: int, protected: np.ndarray | None = None
) -> np.ndarray:
    """Rescale the non-singleton tail so the total hits ``target`` exactly.

    Singleton applications and ``protected`` apps (the >2,000-container
    giants, whose absolute size is itself a published trace feature) are
    never touched, so the single-instance fraction and the giant tail of
    Fig. 8(a) survive the rescale.  Remaining multi-instance sizes are
    scaled multiplicatively (floored at 2), then the residual is
    distributed one container at a time over the largest of them.
    """
    sizes = sizes.copy()
    fixed = sizes == 1
    if protected is not None and protected.size:
        fixed[protected] = True
    n_fixed_total = int(sizes[fixed].sum())
    multi_idx = np.flatnonzero(~fixed)
    if multi_idx.size == 0:
        return sizes
    multi_total = int(sizes[multi_idx].sum())
    want_multi = max(2 * multi_idx.size, target - n_fixed_total)
    factor = want_multi / multi_total
    sizes[multi_idx] = np.maximum(2, np.round(sizes[multi_idx] * factor)).astype(
        np.int64
    )
    # Distribute the rounding residual over the largest apps.
    residual = target - int(sizes.sum())
    if residual != 0:
        order = multi_idx[np.argsort(sizes[multi_idx])[::-1]]
        step = 1 if residual > 0 else -1
        i = 0
        while residual != 0 and multi_idx.size:
            j = order[i % order.size]
            if sizes[j] + step >= 2:
                sizes[j] += step
                residual -= step
            i += 1
            if i > 10 * order.size + abs(residual):  # pragma: no cover
                break
    return sizes


def _calibrate_demand(
    cpus: np.ndarray,
    sizes: np.ndarray,
    config: TraceConfig,
    frozen: np.ndarray | None = None,
) -> np.ndarray:
    """Pin the container-weighted mean CPU demand near its target.

    Container mass concentrates in a handful of wide applications, so an
    unlucky CPU draw for one giant can swing total cluster demand by
    whole percentage points of the cluster.  The paper's trace packs
    into 9,242 of 10,000 machines (Fig. 10); ``config.target_mean_cpu``
    pins total demand to a comparable share of cluster capacity by
    halving/doubling the demands of the widest non-frozen applications
    until the container-weighted mean is within 2 % of the target.
    """
    cpus = cpus.astype(np.float64).copy()
    target = config.target_mean_cpu
    total = int(sizes.sum())
    lo_val, hi_val = min(config.cpu_values), max(config.cpu_values)
    # Walk from the widest app (coarsest lever) to the narrowest
    # (finest); within one pass each app is adjusted at most once so the
    # walk cannot oscillate and the step size shrinks monotonically.
    # Extra passes handle workloads that need more than one halving of
    # the same app (e.g. a heavy frozen mass pushing the mean far off).
    order = np.argsort(sizes)[::-1]
    for pass_no in range(10):
        # Early passes only touch multi-instance apps (the coarse
        # levers); if those are exhausted — e.g. singleton-heavy tiny
        # workloads whose non-frozen container mass is mostly in
        # single-instance apps — later passes adjust singletons too.
        allow_singletons = pass_no >= 5
        converged = True
        for i in order:
            mean = float(np.dot(cpus, sizes)) / total
            error = abs(mean - target)
            if error <= 0.02 * target:
                break
            if sizes[i] <= 1 and not allow_singletons:
                continue
            if frozen is not None and frozen[i]:
                continue
            if mean > target and cpus[i] > lo_val:
                new_val = cpus[i] / 2
            elif mean < target and cpus[i] < hi_val:
                new_val = cpus[i] * 2
            else:
                continue
            # A step is only taken when it strictly reduces the error;
            # otherwise a coarse lever (one wide app covering more mass
            # than the gap) would overshoot and oscillate forever.
            new_mean = mean + sizes[i] * (new_val - cpus[i]) / total
            if abs(new_mean - target) < error:
                cpus[i] = new_val
                converged = False
        mean = float(np.dot(cpus, sizes)) / total
        if abs(mean - target) <= 0.02 * target:
            break
        # A no-op pass only ends the walk once the singleton levers have
        # been unlocked too; before that it just means the coarse levers
        # are exhausted.
        if converged and allow_singletons:
            break

    # Safety valve: whatever the calibration managed, the trace must be
    # schedulable in principle on its nominal cluster.  Extreme corner
    # configurations (tiny scales with a heavy frozen mass) can leave
    # total demand above capacity when every error-reducing lever is
    # exhausted; here schedulability outranks mean accuracy, so the
    # widest apps are halved unconditionally — frozen ones last.
    capacity_mean = 32.0 * config.n_machines / total * 0.95
    for unlock_frozen in (False, True):
        while float(np.dot(cpus, sizes)) / total > capacity_mean:
            movable = [
                i
                for i in order
                if cpus[i] > lo_val
                and (unlock_frozen or frozen is None or not frozen[i])
            ]
            if not movable:
                break
            cpus[movable[0]] /= 2
        if float(np.dot(cpus, sizes)) / total <= capacity_mean:
            break
    return cpus


# ----------------------------------------------------------------------
# priorities
# ----------------------------------------------------------------------
def _assign_priorities(
    rng: np.random.Generator,
    config: TraceConfig,
    sizes: np.ndarray,
    cpus: np.ndarray,
) -> np.ndarray:
    """Pick the ~16 % elevated-priority apps, biased large-and-hungry."""
    n = len(sizes)
    priorities = np.zeros(n, dtype=np.int64)
    n_elevated = round(config.frac_priority * n)
    if n_elevated == 0:
        return priorities
    # Noisy score favouring big apps with big demands (Section V.D).
    score = np.log1p(sizes) + cpus / 8.0 + rng.gumbel(0, 1.0, n)
    elevated = np.argsort(score)[::-1][:n_elevated]
    classes = np.array([c for c, _ in config.priority_classes])
    shares = np.array([s for _, s in config.priority_classes])
    priorities[elevated] = rng.choice(classes, size=n_elevated, p=shares)
    return priorities


# ----------------------------------------------------------------------
# anti-affinity
# ----------------------------------------------------------------------
def _assign_anti_affinity(
    rng: np.random.Generator,
    config: TraceConfig,
    sizes: np.ndarray,
    priorities: np.ndarray,
    cpus: np.ndarray,
) -> tuple[np.ndarray, list[set[int]], np.ndarray]:
    """Assign within-app flags and the cross-application conflict graph.

    Three layers, mirroring the constraint stories of Section II.A:

    1. **Within-app anti-affinity** for ``frac_within_aa`` of the
       constrained multi-instance apps (fault tolerance: replicas on
       distinct machines).
    2. **Interference structure** (anti-affinity across apps): a noisy
       pool of low-demand LLAs and latency-sensitive victim LLAs that
       refuse co-location with most of the pool.  Noisy apps are capped
       at 1 CPU and carry no within-app spreading, so their *packed*
       footprint is tiny while their *spread* footprint covers the
       cluster — the property Fig. 9 measures.
    3. **Background conflicts**: sparse random pairs for texture.

    Returns (within flags, conflict sets, noisy-app mask); the caller
    pins ``cpus[noisy] == 1``.
    """
    n = len(sizes)
    n_constrained = round(config.frac_anti_affinity * n)
    order = np.argsort(sizes)[::-1]
    constrained = set(order[:n_constrained].tolist())

    conflicts: list[set[int]] = [set() for _ in range(n)]
    total_containers = int(sizes.sum())

    # --- layer 2a: the noisy pool -------------------------------------
    # Selected before the within-app flags so the pool can never be
    # starved by an unlucky flag draw: noisy LLAs are packable by
    # construction (no within-app spreading).
    noisy = np.zeros(n, dtype=bool)
    pool_target = config.noisy_container_frac * total_containers
    pool_candidates = [i for i in constrained if sizes[i] >= 2]
    rng.shuffle(pool_candidates)
    covered = 0
    for i in pool_candidates:
        if covered >= pool_target:
            break
        if covered + sizes[i] > 1.1 * pool_target:
            continue  # would overshoot the pool mass; try smaller apps
        noisy[i] = True
        cpus[i] = 1.0
        covered += int(sizes[i])
    noisy_list = np.flatnonzero(noisy)

    within = np.zeros(n, dtype=bool)
    for i in constrained:
        # Within-app anti-affinity is only assignable when the app can
        # actually spread: one replica per machine at most, or the trace
        # would be structurally unschedulable on its nominal cluster.
        if (
            1 < sizes[i] <= config.n_machines
            and not noisy[i]
            and rng.random() < config.frac_within_aa
        ):
            within[i] = True

    # --- layer 2b: the victims ----------------------------------------
    # Latency-sensitive LLAs have larger resource requirements
    # (Section V.A); the *heavy conflictors* among them additionally
    # carry elevated priority (handled in _add_big_conflictors).  The
    # bulk of the victim mass keeps the natural priority mix: most
    # interference-sensitive services are ordinary-priority workloads.
    victim_target = config.victim_container_frac * total_containers
    victim_candidates = sorted(
        (i for i in constrained if not noisy[i]),
        key=lambda i: (-cpus[i], -sizes[i]),
    )
    victim = np.zeros(n, dtype=bool)
    lo_cov, hi_cov = config.victim_noise_coverage
    covered = 0
    for i in victim_candidates:
        if covered >= victim_target or noisy_list.size == 0:
            break
        if covered + sizes[i] > 1.1 * victim_target:
            continue  # would overshoot the victim mass; try smaller apps
        share = rng.uniform(lo_cov, hi_cov)
        k = max(1, round(share * noisy_list.size))
        partners = rng.choice(noisy_list, size=k, replace=False)
        for b in partners:
            conflicts[i].add(int(b))
            conflicts[int(b)].add(i)
        if cpus[i] < 8.0:
            cpus[i] = 8.0
        # Victims are pinned by their interference constraints, not by
        # replica spreading: co-locating two replicas is acceptable,
        # co-locating with a noisy neighbour is not.  Keeping them
        # packable is also what keeps the workload schedulable at all —
        # a victim population that must *both* spread and avoid the
        # noise would exhaust any scheduler's feasible set.
        within[i] = False
        victim[i] = True
        covered += int(sizes[i])

    # --- layer 3: background texture ----------------------------------
    constrained_list = np.array(sorted(constrained))
    if constrained_list.size >= 2:
        k_draws = np.minimum(
            rng.geometric(0.6, constrained_list.size), 3
        )
        for idx, a in enumerate(constrained_list):
            a = int(a)
            has_any = bool(conflicts[a]) or within[a]
            need = int(k_draws[idx]) if has_any else max(1, int(k_draws[idx]))
            if has_any and rng.random() < 0.7:
                continue  # most texture mass on unconstrained-so-far apps
            for _ in range(4 * need):
                if need <= 0:
                    break
                b = int(constrained_list[rng.integers(constrained_list.size)])
                if b != a and b not in conflicts[a]:
                    conflicts[a].add(b)
                    conflicts[b].add(a)
                    need -= 1

    _add_big_conflictors(rng, config, sizes, priorities, conflicts, constrained, within)
    # Freeze both the pool and the victims against demand recalibration:
    # their demands are structural to the interference mechanism.
    return within, conflicts, noisy | victim


def _add_big_conflictors(
    rng: np.random.Generator,
    config: TraceConfig,
    sizes: np.ndarray,
    priorities: np.ndarray,
    conflicts: list[set[int]],
    constrained: set[int],
    within: np.ndarray,
) -> None:
    """Make a few high-priority LLAs conflict with >= the coverage target.

    Section V.A: "several LLAs cannot be co-located with at least other
    5,000 containers due to anti-affinity constraints, and these
    applications usually have higher priorities and larger resource
    requirements".  Partners are drawn from the *packable* (non-within)
    constrained apps first, so the workload stays schedulable for a
    scheduler that confines those partners to few machines.
    """
    coverage_target = config.big_conflict_coverage * config.heavy_coverage_multiplier
    n_heavy = max(3, round(config.frac_heavy_conflictors * config.n_apps))
    elevated = np.flatnonzero(priorities > 0)
    if elevated.size == 0:
        elevated = np.argsort(sizes)[::-1][:n_heavy]
    heavy = elevated[np.argsort(sizes[elevated])[::-1]][:n_heavy]
    heavy_set = set(heavy.tolist())
    packable = np.array(
        sorted(i for i in constrained if not within[i] and i not in heavy_set)
    )
    spread = np.array(
        sorted(i for i in constrained if within[i] and i not in heavy_set)
    )
    for a in heavy:
        a = int(a)
        covered = int(sizes[list(conflicts[a])].sum()) if conflicts[a] else 0
        for pool in (packable, spread):
            if covered >= coverage_target or pool.size == 0:
                break
            for b in rng.permutation(pool):
                if covered >= coverage_target:
                    break
                b = int(b)
                if b in conflicts[a]:
                    continue
                conflicts[a].add(b)
                conflicts[b].add(a)
                covered += int(sizes[b])
