"""Trace configuration and the generated workload record.

The full-scale constants mirror Section V.A of the paper:

* 13,056 LLAs totalling ~100,000 containers on 10,000 machines;
* 64 % of LLAs are single-instance; a few LLAs exceed 2,000 containers;
* 9,400 LLAs (~72 %) carry anti-affinity, 2,088 (~16 %) carry priority;
* container demand tops out at 16 CPU / 32 GB on 32 CPU / 64 GB machines;
* several LLAs conflict with at least 5,000 other containers.

``scale`` shrinks every absolute count proportionally while keeping all
the ratios fixed, so percentages reported by the evaluation are
scale-invariant (see DESIGN.md §4, "Scale").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, Container, containers_of

# Full-scale constants from Section V.A.
FULL_N_APPS = 13056
FULL_TARGET_CONTAINERS = 100_000
FULL_N_MACHINES = 10_000
FULL_N_ANTI_AFFINITY_APPS = 9400
FULL_N_PRIORITY_APPS = 2088
FULL_BIG_CONFLICT_COVERAGE = 5000

#: CPU demand distribution: values and probabilities.  Power-of-two
#: demands that divide the 32-CPU machine, mean ≈ 2.99 CPU, which puts
#: the bin-packing lower bound for 100k containers at ~9.3k machines —
#: consistent with Aladdin's 9,242 used machines in Fig. 10.
CPU_DEMAND_VALUES = (1, 2, 4, 8, 16)
CPU_DEMAND_PROBS = (0.35, 0.30, 0.25, 0.07, 0.03)


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of the synthetic trace generator.

    Parameters
    ----------
    scale:
        Linear scale factor relative to the paper's trace.  ``1.0`` is
        the full 13,056-app / ~100k-container workload; the default
        reproduction scale ``0.05`` (1/20) keeps pure-Python runtimes
        tractable.
    seed:
        RNG seed; traces are fully deterministic given (scale, seed).
    frac_single / frac_anti_affinity / frac_priority:
        Fractions of LLAs that are single-instance / carry anti-affinity
        / carry an elevated priority class.
    priority_classes:
        Elevated classes and their relative shares among priority apps.
    max_cross_conflicts:
        Upper bound on sampled cross-application conflicts per app.
    frac_within_aa:
        Fraction of constrained multi-instance LLAs whose own containers
        must sit on distinct machines.  The remainder carry only
        cross-application conflicts — crucial structure: such apps can
        be *packed* onto few machines (small blocking footprint for a
        packing scheduler) or *spread* over many (huge footprint for a
        spreading scheduler), which is what separates Aladdin from
        Go-Kube in Fig. 9.
    conflict_geometric_p:
        Geometric parameter for the number of cross-conflict partners
        per constrained app (smaller = denser conflicts).
    heavy_coverage_multiplier / frac_heavy_conflictors:
        A few high-priority LLAs conflict with at least
        ``big_conflict_coverage × multiplier`` containers (Section V.A's
        "cannot be co-located with at least other 5,000 containers").
    noisy_container_frac / victim_container_frac / victim_noise_coverage:
        The interference structure behind anti-affinity *across*
        applications ("two LLAs should not be deployed on the same
        machine to avoid critical performance interference",
        Section II.A): a pool of noisy low-demand LLAs
        (``noisy_container_frac`` of all containers at 1 CPU each) and a
        set of latency-sensitive victim LLAs (``victim_container_frac``
        of containers, biased to high priority and larger demands) each
        conflicting with a ``victim_noise_coverage`` share of the noisy
        pool.  A packing scheduler confines the pool to a few machines;
        a spreading scheduler coats the cluster with it and starves the
        victims — the separation the paper's Fig. 9 measures.
    """

    scale: float = 0.05
    seed: int = 0
    frac_single: float = 0.64
    frac_anti_affinity: float = FULL_N_ANTI_AFFINITY_APPS / FULL_N_APPS
    frac_priority: float = FULL_N_PRIORITY_APPS / FULL_N_APPS
    priority_classes: tuple[tuple[int, float], ...] = ((1, 0.6), (2, 0.3), (3, 0.1))
    max_cross_conflicts: int = 30
    frac_within_aa: float = 0.6
    conflict_geometric_p: float = 0.15
    heavy_coverage_multiplier: float = 3.0
    frac_heavy_conflictors: float = 0.01
    noisy_container_frac: float = 0.45
    victim_container_frac: float = 0.22
    victim_noise_coverage: tuple[float, float] = (0.8, 1.0)
    target_mean_cpu: float = 2.75
    cpu_values: tuple[int, ...] = CPU_DEMAND_VALUES
    cpu_probs: tuple[float, ...] = CPU_DEMAND_PROBS

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        for name in (
            "frac_single",
            "frac_anti_affinity",
            "frac_priority",
            "frac_within_aa",
            "frac_heavy_conflictors",
        ):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if len(self.cpu_values) != len(self.cpu_probs):
            raise ValueError("cpu_values and cpu_probs must align")
        if abs(sum(self.cpu_probs) - 1.0) > 1e-9:
            raise ValueError(f"cpu_probs must sum to 1, got {sum(self.cpu_probs)}")
        share = sum(s for _, s in self.priority_classes)
        if abs(share - 1.0) > 1e-9:
            raise ValueError(f"priority class shares must sum to 1, got {share}")

    @property
    def n_apps(self) -> int:
        return max(1, round(FULL_N_APPS * self.scale))

    @property
    def target_containers(self) -> int:
        return max(1, round(FULL_TARGET_CONTAINERS * self.scale))

    @property
    def n_machines(self) -> int:
        return max(1, round(FULL_N_MACHINES * self.scale))

    @property
    def big_conflict_coverage(self) -> int:
        """Container count a "big conflict" LLA must be incompatible with."""
        return max(1, round(FULL_BIG_CONFLICT_COVERAGE * self.scale))


@dataclass
class Trace:
    """A generated workload: applications plus derived indices."""

    config: TraceConfig
    applications: list[Application]
    constraints: ConstraintSet = field(init=False)
    containers: list[Container] = field(init=False)

    def __post_init__(self) -> None:
        self.constraints = ConstraintSet.from_applications(self.applications)
        self.containers = containers_of(self.applications)

    @property
    def n_containers(self) -> int:
        return len(self.containers)

    @property
    def n_apps(self) -> int:
        return len(self.applications)

    def app(self, app_id: int) -> Application:
        application = self.applications[app_id]
        if application.app_id != app_id:  # defensive: ids must stay dense
            raise ValueError(f"application ids are not dense at {app_id}")
        return application

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(apps={self.n_apps}, containers={self.n_containers}, "
            f"scale={self.config.scale})"
        )
