"""Workload substrate: synthetic Alibaba-like LLA traces.

The paper evaluates on a proprietary production trace from a
10,000-machine Alibaba cluster (Section V.A).  This package generates a
synthetic equivalent calibrated to every statistic the paper publishes
about that trace (Fig. 8 and the surrounding text); see
``DESIGN.md`` §2 for the substitution argument.

* :class:`~repro.trace.schema.TraceConfig` / :class:`~repro.trace.schema.Trace`
  — configuration and the generated workload.
* :func:`~repro.trace.generator.generate_trace` — the calibrated sampler.
* :class:`~repro.trace.arrival.ArrivalOrder` /
  :func:`~repro.trace.arrival.order_containers` — the four arrival
  characteristics of Section V.C/V.D (CHP, CLP, CLA, CSA).
* :mod:`~repro.trace.loader` — CSV round-trip.
* :mod:`~repro.trace.stats` — the Fig. 8 workload statistics.
"""

from repro.trace.schema import Trace, TraceConfig
from repro.trace.generator import generate_trace
from repro.trace.arrival import ArrivalOrder, anti_affinity_degree, order_containers
from repro.trace.loader import load_trace, save_trace
from repro.trace.stats import WorkloadStats, workload_stats
from repro.trace.alibaba import load_alibaba_trace, load_container_meta

__all__ = [
    "Trace",
    "TraceConfig",
    "generate_trace",
    "ArrivalOrder",
    "anti_affinity_degree",
    "order_containers",
    "load_trace",
    "save_trace",
    "WorkloadStats",
    "workload_stats",
    "load_alibaba_trace",
    "load_container_meta",
]
