"""Workload substrate: synthetic Alibaba-like LLA traces.

The paper evaluates on a proprietary production trace from a
10,000-machine Alibaba cluster (Section V.A).  This package generates a
synthetic equivalent calibrated to every statistic the paper publishes
about that trace (Fig. 8 and the surrounding text); see
``DESIGN.md`` §2 for the substitution argument.

* :class:`~repro.trace.schema.TraceConfig` / :class:`~repro.trace.schema.Trace`
  — configuration and the generated workload.
* :func:`~repro.trace.generator.generate_trace` — the calibrated sampler.
* :class:`~repro.trace.arrival.ArrivalOrder` /
  :func:`~repro.trace.arrival.order_containers` — the four arrival
  characteristics of Section V.C/V.D (CHP, CLP, CLA, CSA).
* :mod:`~repro.trace.loader` — CSV round-trip.
* :mod:`~repro.trace.stats` — the Fig. 8 workload statistics.
* :mod:`~repro.trace.azure` — the Azure Functions 2019 real-trace
  front-end (parser + cache + seeded synthetic fallback).
* :mod:`~repro.trace.scenarios` — named serverless scenario families
  (``diurnal`` / ``burst`` / ``churn-storm`` / ``mixed-lla``) built on
  the Azure curves; see docs/WORKLOADS.md.
"""

from repro.trace.schema import Trace, TraceConfig
from repro.trace.generator import generate_trace
from repro.trace.arrival import ArrivalOrder, anti_affinity_degree, order_containers
from repro.trace.loader import load_trace, save_trace
from repro.trace.stats import WorkloadStats, workload_stats
from repro.trace.alibaba import load_alibaba_trace, load_container_meta
from repro.trace.azure import (
    AzureDataset,
    AzureFunction,
    AzureTraceError,
    azure_dataset,
    load_azure_dataset,
    synthetic_azure_dataset,
)
from repro.trace.scenarios import (
    SCENARIOS,
    ScenarioConfig,
    build_scenario,
    scenario_config,
    scenario_schedule,
)

__all__ = [
    "Trace",
    "TraceConfig",
    "generate_trace",
    "ArrivalOrder",
    "anti_affinity_degree",
    "order_containers",
    "load_trace",
    "save_trace",
    "WorkloadStats",
    "workload_stats",
    "load_alibaba_trace",
    "load_container_meta",
    "AzureDataset",
    "AzureFunction",
    "AzureTraceError",
    "azure_dataset",
    "load_azure_dataset",
    "synthetic_azure_dataset",
    "SCENARIOS",
    "ScenarioConfig",
    "build_scenario",
    "scenario_config",
    "scenario_schedule",
]
