"""Scenario families over the Azure Functions trace.

:mod:`repro.trace.azure` yields per-function invocation curves; this
module maps them onto the reproduction's workload model: every
(function, tick-bin) with surviving load becomes one short-lived
:class:`~repro.cluster.container.Application` whose containers arrive
together and depart a few ticks later, mixed into an Alibaba-style LLA
base built by :mod:`repro.trace.generator` (which carries all the
anti-affinity/priority structure).  The result is an ordinary
:class:`~repro.trace.schema.Trace` — it saves/loads through
:mod:`repro.trace.loader`, schedules through every engine, and drives
:mod:`repro.sim.online` and :mod:`repro.serve` unchanged.

**Arrival times and lifetimes are encoded in application names**
(``fn-0042-t017-l002``, ``lla-00007-t003-l096``): the online
simulator's checkpoint/restore path and the serving replay client both
*recompute* ``arrival_schedule(trace, config)`` from the seed instead
of persisting it, so a scenario's schedule must be derivable from the
trace alone.  Names survive the CSV round-trip of
:mod:`repro.trace.loader`, which makes a saved scenario trace fully
self-describing — including ones built from the real dataset, where no
seed could regenerate the arrival plan.

Four named families (``SCENARIOS``):

``diurnal``
    The dataset's day replayed as-is: smooth daytime peak over a
    nighttime trough.  Load follows the aggregate invocation curve.
``burst``
    Diurnal plus a synchronized spike — invocation counts in a short
    tick window are multiplied several-fold, modelling a flash event
    on top of steady traffic (the regime the max-min solver objective
    should be checked under).
``churn-storm``
    Every function container lives exactly one tick: per-tick
    arrivals*and* departures both equal the full invocation volume —
    orders of magnitude more churn than the LLA-only trace, the
    stress test the feasibility cache and rescue kernel were built
    for.
``mixed-lla``
    A heavier constrained-LLA base arriving throughout the day with
    shorter lifetimes, so long-lived anti-affinity structure churns
    *concurrently* with the serverless load.
``autoscale``
    The diurnal day tiled over multiple days (``days=2``) with a thin
    LLA base, so the trough between peaks is deep and repeated — the
    regime where scale-to-zero power management and warm pools
    (:mod:`repro.cluster.power`, :mod:`repro.cluster.warmpool`) have
    something to win.  Repeated days also mean the same functions
    re-arrive, which is what gives a warm pool its hits.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.container import Application
from repro.trace.azure import MINUTES_PER_DAY, AzureDataset, azure_dataset
from repro.trace.generator import generate_trace
from repro.trace.schema import Trace, TraceConfig

#: machine CPU capacity (32 CPU / 64 GB machines, Section V.A)
_MACHINE_CPU = 32.0

#: scenario-specific :class:`ScenarioConfig` overrides, applied by
#: :func:`scenario_config`; keys are the CLI-facing family names.
SCENARIOS: dict[str, dict] = {
    "diurnal": {},
    "burst": {"burst_factor": 5.0},
    "churn-storm": {"force_lifetime": 1, "lla_share": 0.15},
    "mixed-lla": {
        "lla_share": 0.5,
        "lla_arrival_span": 1.0,
        "lla_lifetime": (12, 96),
    },
    # peak_load leaves room for cold-start lifetime inflation: with the
    # lifecycle on, pool misses extend short function residencies by
    # cold_start_ticks, so concurrency overshoots the calibration.
    "autoscale": {"days": 2, "lla_share": 0.1, "peak_load": 0.35},
}

_NAME_RE = re.compile(r"-t(\d+)-l(\d+)$")


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of one scenario build.

    Parameters
    ----------
    name:
        Scenario family, a key of :data:`SCENARIOS`.
    scale:
        Cluster scale, same meaning as
        :class:`~repro.trace.schema.TraceConfig.scale` — sets the
        nominal machine count the load is calibrated against.
    seed:
        Seed for the LLA base, the fallback dataset and every sampled
        arrival/lifetime.  Builds are bit-deterministic in
        (name, scale, seed, dataset).
    ticks:
        Tick bins the 1,440-minute day is folded into (48 → 30-minute
        ticks).
    peak_load:
        Target peak concurrent CPU demand (functions + resident LLAs)
        as a fraction of nominal cluster capacity; the invocation →
        container divisor is calibrated so the busiest tick lands
        here.
    lla_share:
        Size of the Alibaba-style LLA base, as a multiplier on
        ``scale`` fed to :func:`~repro.trace.generator.generate_trace`.
    lla_lifetime / lla_arrival_span:
        LLA lifetimes (log-uniform ticks) and the fraction of the day
        their arrivals are spread over (0.25 → all LLAs arrive in the
        first quarter, then stay resident).
    burst_ticks / burst_factor:
        Ticks whose invocation counts are multiplied by
        ``burst_factor``; empty means no burst.  ``scenario_config``
        defaults the ``burst`` family to a 2-tick window at midday.
    force_lifetime:
        When set, every function app lives exactly this many ticks
        (``churn-storm`` pins it to 1).
    days:
        Number of times the dataset's day is tiled across the tick
        horizon (``ticks`` must divide evenly).  ``days=1`` reproduces
        the single-day families bit-for-bit; higher values repeat the
        diurnal curve so troughs recur — the ``autoscale`` family's
        default.
    n_functions:
        Fallback-dataset size when no real dataset is supplied.
    max_block:
        Per-application container cap — one function's bin is split
        no wider than this, bounding a single submission batch.
    """

    name: str = "diurnal"
    scale: float = 0.05
    seed: int = 0
    ticks: int = 48
    days: int = 1
    peak_load: float = 0.55
    lla_share: float = 0.25
    lla_lifetime: tuple[int, int] = (48, 192)
    lla_arrival_span: float = 0.25
    burst_ticks: tuple[int, ...] = ()
    burst_factor: float = 1.0
    force_lifetime: int | None = None
    n_functions: int = 200
    max_block: int = 512

    def __post_init__(self) -> None:
        if self.name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.name!r}; "
                f"choose from {sorted(SCENARIOS)}"
            )
        if self.ticks < 2:
            raise ValueError("ticks must be >= 2")
        if not 0 < self.peak_load <= 1.0:
            raise ValueError(f"peak_load must be in (0, 1], got {self.peak_load}")
        lo, hi = self.lla_lifetime
        if not 1 <= lo <= hi:
            raise ValueError(f"bad lla_lifetime range {self.lla_lifetime}")
        if not 0 < self.lla_arrival_span <= 1.0:
            raise ValueError("lla_arrival_span must be in (0, 1]")
        if self.force_lifetime is not None and self.force_lifetime < 1:
            raise ValueError("force_lifetime must be >= 1")
        if any(not 0 <= t < self.ticks for t in self.burst_ticks):
            raise ValueError(f"burst_ticks out of range: {self.burst_ticks}")
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if self.ticks % self.days:
            raise ValueError(
                f"ticks ({self.ticks}) must divide evenly into "
                f"days ({self.days})"
            )


def scenario_config(name: str, **overrides) -> ScenarioConfig:
    """Build a :class:`ScenarioConfig` with the family's defaults applied.

    Explicit ``overrides`` win over the family defaults; the ``burst``
    family additionally defaults ``burst_ticks`` to a two-tick window
    at midday of the configured day length.
    """
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    kwargs: dict = dict(SCENARIOS[name])
    kwargs.update(overrides)
    if name == "burst" and "burst_ticks" not in kwargs:
        ticks = int(kwargs.get("ticks", ScenarioConfig.ticks))
        kwargs["burst_ticks"] = (ticks // 2, min(ticks - 1, ticks // 2 + 1))
    return ScenarioConfig(name=name, **kwargs)


# ----------------------------------------------------------------------
# building a scenario trace
# ----------------------------------------------------------------------
def _encode(name: str, tick: int, life: int) -> str:
    return f"{name}-t{tick:03d}-l{life:03d}"


def decode_arrival(name: str) -> tuple[int, int]:
    """(arrival tick, lifetime) from a scenario application name."""
    m = _NAME_RE.search(name)
    if m is None:
        raise ValueError(
            f"application name {name!r} carries no -tNNN-lNNN scenario "
            "suffix; was this trace built by build_scenario()?"
        )
    return int(m.group(1)), int(m.group(2))


def function_pool_key(name: str) -> str | None:
    """Warm-pool identity stem of a scenario application name.

    Function apps (``fn-0042-t017-l002``) re-arrive under different
    ``-tNNN-lNNN`` suffixes at every bin; the stem (``fn-0042``) is
    the stable identity a warm container can be claimed under.  LLA
    apps and non-scenario names return ``None`` — they are never
    pool-eligible.
    """
    if not name.startswith("fn-"):
        return None
    m = _NAME_RE.search(name)
    if m is None:
        return None
    return name[: m.start()]


def _function_cpu(memory_mb: float) -> float:
    """Container CPU demand from the function's memory footprint."""
    if memory_mb < 256.0:
        return 1.0
    if memory_mb < 768.0:
        return 2.0
    return 4.0


def _function_lifetime(duration_ms: float, config: ScenarioConfig) -> int:
    """Ticks a function's containers stay resident."""
    if config.force_lifetime is not None:
        return config.force_lifetime
    return 1 + min(3, int(duration_ms) // 60_000)


def _bin_day(invocations: np.ndarray, ticks: int) -> np.ndarray:
    """Fold a 1,440-minute count vector into ``ticks`` bins."""
    edges = (np.arange(ticks) * MINUTES_PER_DAY) // ticks
    return np.add.reduceat(invocations, edges).astype(np.float64)


def _lla_base(config: ScenarioConfig) -> list[Application]:
    """The constrained LLA base, arrival/lifetime encoded in names."""
    base_scale = max(0.002, config.scale * config.lla_share)
    base = generate_trace(scale=base_scale, seed=config.seed)
    rng = np.random.default_rng((config.seed << 1) ^ 0x11A)
    span = max(1, round(config.lla_arrival_span * config.ticks))
    ticks = rng.integers(0, span, base.n_apps)
    lo, hi = config.lla_lifetime
    lives = np.exp(
        rng.uniform(np.log(lo), np.log(hi + 1), base.n_apps)
    ).astype(np.int64)
    return [
        replace(
            app,
            name=_encode(f"lla-{app.app_id:05d}", int(ticks[i]), int(lives[i])),
        )
        for i, app in enumerate(base.applications)
    ]


def build_scenario(
    config: ScenarioConfig | str,
    dataset: AzureDataset | None = None,
    **overrides,
) -> Trace:
    """Materialise one scenario as an ordinary :class:`Trace`.

    ``config`` is a :class:`ScenarioConfig` or a family name (with
    keyword ``overrides``); ``dataset`` defaults to the seeded
    synthetic fallback, so offline builds need nothing on disk.  The
    invocation → container divisor is calibrated so peak concurrent
    demand (functions stacked over their lifetimes, plus the resident
    LLA base) is ~``peak_load`` of the nominal cluster.
    """
    if isinstance(config, str):
        config = scenario_config(config, **overrides)
    elif overrides:
        raise TypeError("pass either a ScenarioConfig or keyword overrides, not both")
    if dataset is None:
        dataset = azure_dataset(seed=config.seed, n_functions=config.n_functions)
    if not dataset.functions:
        raise ValueError("cannot build a scenario from an empty dataset")

    trace_config = TraceConfig(scale=config.scale, seed=config.seed)
    apps = _lla_base(config)
    lla_cpu = sum(a.n_containers * a.cpu for a in apps)

    # Per-function binned counts, scenario transforms applied.
    functions = dataset.top_functions(len(dataset.functions))
    binned: list[np.ndarray] = []
    lives: list[int] = []
    cpus: list[float] = []
    for fn in functions:
        # Tile the dataset's single day over `days` repeats; days=1 is
        # bit-identical to binning the whole horizon directly.
        counts = np.tile(
            _bin_day(fn.invocations, config.ticks // config.days), config.days
        )
        if config.burst_ticks:
            for t in config.burst_ticks:
                counts[t] *= config.burst_factor
        binned.append(counts)
        lives.append(_function_lifetime(fn.duration_ms, config))
        cpus.append(_function_cpu(fn.memory_mb))

    # Calibrate one global divisor: raw concurrent CPU (each function's
    # arrivals stacked over its lifetime) scaled so the busiest tick
    # meets the budget left over by the resident LLA base.
    raw = np.zeros(config.ticks)
    for counts, life, cpu in zip(binned, lives, cpus):
        raw += cpu * np.convolve(counts, np.ones(life))[: config.ticks]
    capacity = _MACHINE_CPU * trace_config.n_machines
    budget = max(config.peak_load * capacity - lla_cpu, 0.05 * capacity)
    divisor = max(1.0, float(raw.max()) / budget)

    n_lla = len(apps)
    app_id = n_lla
    for fi, (counts, life, cpu) in enumerate(zip(binned, lives, cpus)):
        scaled = np.round(counts / divisor).astype(np.int64)
        for t in np.flatnonzero(scaled):
            n = min(int(scaled[t]), config.max_block)
            apps.append(
                Application(
                    app_id=app_id,
                    n_containers=n,
                    cpu=cpu,
                    mem_gb=cpu * 2.0,
                    name=_encode(f"fn-{fi:04d}", int(t), life),
                )
            )
            app_id += 1

    if app_id == n_lla:  # pragma: no cover - tiny budgets
        # Degenerate calibration (every function rounded away): keep the
        # busiest function's peak bin so the scenario is never function-free.
        counts, life, cpu = binned[0], lives[0], cpus[0]
        t = int(np.argmax(counts))
        apps.append(
            Application(
                app_id=app_id, n_containers=1, cpu=cpu, mem_gb=cpu * 2.0,
                name=_encode("fn-0000", t, life),
            )
        )
    return Trace(config=trace_config, applications=apps)


# ----------------------------------------------------------------------
# the arrival schedule (recomputed from names)
# ----------------------------------------------------------------------
def scenario_schedule(trace: Trace, config) -> "object":
    """Decode a scenario trace's arrival plan into an ``ArrivalSchedule``.

    The plan lives in the application names (see module docstring), so
    this is a pure function of the trace — restore-from-checkpoint and
    the serving replay client recompute the identical schedule with no
    persisted state.  ``config`` is the
    :class:`~repro.sim.online.OnlineConfig`; its ``ticks``,
    ``lifetime_ticks`` and ``arrival_order`` are ignored here (the
    scenario pins all three), while ``seed`` stays what names the run.
    """
    from repro.sim.online import ArrivalSchedule  # circular-import guard

    plan = [(decode_arrival(app.name), app) for app in trace.applications]
    plan.sort(key=lambda item: (item[0][0], item[1].app_id))
    apps = [app for _, app in plan]
    arrival_tick = np.array([t for (t, _), _ in plan], dtype=np.int64)
    life_of = {app.app_id: life for (_, life), app in plan}
    by_app: dict[int, list] = {}
    for c in trace.containers:
        by_app.setdefault(c.app_id, []).append(c)
    horizon = int(max(t + life for (t, life), _ in plan)) + 1
    return ArrivalSchedule(apps, arrival_tick, life_of, by_app, horizon)
