"""Flow-network substrate.

Generic directed flow networks and the algorithms the reproduction
builds on:

* :class:`~repro.flownet.graph.FlowNetwork` — residual-graph
  representation with integer/float capacities.
* :func:`~repro.flownet.maxflow.edmonds_karp` /
  :func:`~repro.flownet.maxflow.dinic` — classic maximum-flow solvers
  (reference implementations used for validation).
* :func:`~repro.flownet.spfa.spfa` — the queue-based Bellman–Ford
  shortest-path routine the paper cites (SPFA, [21]).
* :func:`~repro.flownet.mincost.min_cost_max_flow` — successive
  shortest path min-cost flow; the Quincy/Firmament cost-model baseline
  solves this.
* :class:`~repro.flownet.capacity.VectorCapacity` — multidimensional
  N-tuple capacities with the element-wise dominance test of Equation 6.
* :mod:`~repro.flownet.validation` — capacity-constraint and
  flow-conservation checks (Equations 1–2).
"""

from repro.flownet.graph import Edge, FlowNetwork
from repro.flownet.capacity import VectorCapacity
from repro.flownet.maxflow import edmonds_karp, dinic
from repro.flownet.spfa import spfa
from repro.flownet.mincost import min_cost_max_flow, MinCostFlowResult
from repro.flownet.validation import (
    check_capacity_constraints,
    check_flow_conservation,
    validate_flow,
)

__all__ = [
    "Edge",
    "FlowNetwork",
    "VectorCapacity",
    "edmonds_karp",
    "dinic",
    "spfa",
    "min_cost_max_flow",
    "MinCostFlowResult",
    "check_capacity_constraints",
    "check_flow_conservation",
    "validate_flow",
]
