"""Flow validity checks (the paper's Equations 1 and 2).

Used by tests and by debug assertions: a function ``f`` is a flow when it
respects every edge capacity (Equation 1) and conserves flow at every
vertex other than the source and sink (Equation 2).
"""

from __future__ import annotations

from repro.flownet.graph import FlowNetwork

_EPS = 1e-6


def check_capacity_constraints(net: FlowNetwork) -> list[str]:
    """Return a violation message per edge breaking ``0 ≤ f ≤ c``.

    Only forward (caller-added) edges are inspected; their paired
    reverse edges hold the bookkeeping negative flow by construction.
    """
    problems: list[str] = []
    for i in range(0, len(net.edges), 2):
        edge = net.edges[i]
        if edge.flow < -_EPS:
            problems.append(f"edge {i}: negative flow {edge.flow}")
        if edge.flow > edge.capacity + _EPS:
            problems.append(
                f"edge {i}: flow {edge.flow} exceeds capacity {edge.capacity}"
            )
    return problems


def check_flow_conservation(
    net: FlowNetwork, source: int, sink: int
) -> list[str]:
    """Return a violation message per internal vertex with net imbalance."""
    balance = [0.0] * net.n_nodes
    for i in range(0, len(net.edges), 2):
        edge = net.edges[i]
        tail = net.edges[i ^ 1].head
        balance[tail] -= edge.flow
        balance[edge.head] += edge.flow
    problems: list[str] = []
    for v in range(net.n_nodes):
        if v in (source, sink):
            continue
        if abs(balance[v]) > _EPS:
            problems.append(f"vertex {v}: net imbalance {balance[v]}")
    return problems


def validate_flow(net: FlowNetwork, source: int, sink: int) -> None:
    """Raise ``AssertionError`` with all problems if the flow is invalid."""
    problems = check_capacity_constraints(net)
    problems += check_flow_conservation(net, source, sink)
    if problems:
        raise AssertionError("invalid flow:\n" + "\n".join(problems))
