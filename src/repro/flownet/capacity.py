"""Multidimensional capacities (the paper's N-tuple capacity function).

Section III.C: a capacity ``c(i, j)`` can be denoted as an N-tuple
``(x1, x2, ..., xn)`` where every element is a linear function; a flow is
admissible when the container's tuple is dominated by the machine's tuple
(Equation 6).  Anti-affinity needs more than element-wise dominance, so
Aladdin extends the comparison with a *nonlinear set-based* membership
test — realised here as an arbitrary predicate hook and concretely by
:class:`repro.core.blacklist.BlacklistFunction`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


class VectorCapacity:
    """An N-tuple capacity with optional nonlinear admission predicate.

    Parameters
    ----------
    values:
        The linear part of the capacity — one value per resource
        dimension.
    predicate:
        Optional nonlinear part: called with the *demand* vector and an
        opaque context object; must return ``True`` for the flow to be
        admitted even when the linear test passes.  This is the paper's
        "the symbol ≤ is extended to represent ``c(s,Ti) ∈ c(Nj,t)``".
    """

    __slots__ = ("values", "predicate")

    def __init__(
        self,
        values: np.ndarray | list[float] | tuple[float, ...],
        predicate: Callable[[np.ndarray, object], bool] | None = None,
    ) -> None:
        self.values = np.asarray(values, dtype=np.float64)
        if self.values.ndim != 1 or self.values.size == 0:
            raise ValueError("capacity must be a non-empty 1-D tuple of values")
        if (self.values < 0).any():
            raise ValueError(f"capacity values must be non-negative: {self.values}")
        self.predicate = predicate

    @property
    def n_dims(self) -> int:
        return int(self.values.size)

    def admits(self, demand: np.ndarray, context: object = None) -> bool:
        """Equation 6 extended with the nonlinear membership test.

        ``demand ≤ capacity`` element-wise, *and* the predicate (if any)
        accepts the pairing.
        """
        demand = np.asarray(demand, dtype=np.float64)
        if demand.shape != self.values.shape:
            raise ValueError(
                f"demand dims {demand.shape} do not match capacity dims "
                f"{self.values.shape}"
            )
        if not (demand <= self.values + 1e-12).all():
            return False
        if self.predicate is not None and not self.predicate(demand, context):
            return False
        return True

    def consume(self, demand: np.ndarray) -> None:
        """Subtract an admitted demand from the linear capacity."""
        demand = np.asarray(demand, dtype=np.float64)
        if (demand > self.values + 1e-9).any():
            raise ValueError(
                f"demand {demand} exceeds remaining capacity {self.values}"
            )
        self.values = self.values - demand

    def release(self, demand: np.ndarray) -> None:
        """Return a previously consumed demand to the linear capacity."""
        self.values = self.values + np.asarray(demand, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonlinear = ", nonlinear" if self.predicate is not None else ""
        return f"VectorCapacity({self.values.tolist()}{nonlinear})"
