"""Residual flow-network representation.

A :class:`FlowNetwork` stores a directed graph in the standard
"paired-edge" residual form: every edge is stored together with its
reverse edge at index ``e ^ 1``, so augmenting along an edge and pushing
back along its reverse are both O(1).  Node ids are dense integers;
callers that want named vertices keep their own mapping (see
:mod:`repro.core.network_builder`).

Capacities and costs are floats; the scheduling networks built by the
reproduction only ever use integral capacities, so exactness is not a
concern at the scales involved.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Edge:
    """One directed edge of the residual graph.

    ``flow`` may exceed 0 only up to ``capacity``; the reverse edge's
    residual capacity is exactly this edge's flow.
    """

    head: int
    capacity: float
    cost: float = 0.0
    flow: float = 0.0

    @property
    def residual(self) -> float:
        """Remaining capacity on this edge."""
        return self.capacity - self.flow


class FlowNetwork:
    """Directed flow network with paired residual edges.

    Parameters
    ----------
    n_nodes:
        Number of vertices; node ids are ``0 .. n_nodes-1``.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = n_nodes
        self.edges: list[Edge] = []
        #: adjacency: node -> list of edge indices (forward and reverse)
        self.adj: list[list[int]] = [[] for _ in range(n_nodes)]

    def add_node(self) -> int:
        """Append a new vertex, returning its id."""
        self.adj.append([])
        self.n_nodes += 1
        return self.n_nodes - 1

    def add_edge(self, tail: int, head: int, capacity: float, cost: float = 0.0) -> int:
        """Add edge ``tail → head``; returns the forward edge index.

        The paired reverse edge (capacity 0, cost ``-cost``) is created
        automatically at the returned index ``+ 1``.
        """
        self._check_node(tail)
        self._check_node(head)
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        idx = len(self.edges)
        self.edges.append(Edge(head=head, capacity=capacity, cost=cost))
        self.edges.append(Edge(head=tail, capacity=0.0, cost=-cost))
        self.adj[tail].append(idx)
        self.adj[head].append(idx + 1)
        return idx

    def push(self, edge_index: int, amount: float) -> None:
        """Push ``amount`` units of flow along ``edge_index``.

        Raises ``ValueError`` when the push exceeds residual capacity
        (with a small float tolerance).
        """
        edge = self.edges[edge_index]
        if amount > edge.residual + 1e-9:
            raise ValueError(
                f"push of {amount} exceeds residual {edge.residual} on edge "
                f"{edge_index}"
            )
        edge.flow += amount
        self.edges[edge_index ^ 1].flow -= amount

    def flow_on(self, edge_index: int) -> float:
        """Net flow on the forward edge at ``edge_index``."""
        return self.edges[edge_index].flow

    def reset_flow(self) -> None:
        """Zero all flow, keeping the graph structure."""
        for edge in self.edges:
            edge.flow = 0.0

    def out_edges(self, node: int) -> list[tuple[int, Edge]]:
        """(edge index, edge) pairs leaving ``node`` in the residual graph."""
        return [(i, self.edges[i]) for i in self.adj[node]]

    def n_forward_edges(self) -> int:
        """Number of caller-added (forward) edges."""
        return len(self.edges) // 2

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range [0, {self.n_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowNetwork(n_nodes={self.n_nodes}, "
            f"n_edges={self.n_forward_edges()})"
        )
