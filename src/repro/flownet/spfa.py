"""SPFA — the queue-based Bellman–Ford shortest path.

The paper's Algorithm 1 is "similar to typical flow-based algorithms like
SPFA or Bellman-Ford" (Section IV.D).  This module provides the generic
routine over a residual :class:`~repro.flownet.graph.FlowNetwork`; the
min-cost flow solver and, indirectly, the Quincy baseline are built on it.
"""

from __future__ import annotations

from collections import deque

from repro import telemetry
from repro.flownet.graph import FlowNetwork

_EPS = 1e-9


def spfa(
    net: FlowNetwork,
    source: int,
    skip_saturated: bool = True,
) -> tuple[list[float], list[int]]:
    """Shortest-path distances from ``source`` by edge cost.

    Parameters
    ----------
    net:
        The network; negative costs are allowed (reverse residual edges
        carry negated costs) but negative *cycles* reachable from the
        source raise ``ValueError``.
    source:
        Start vertex.
    skip_saturated:
        When true (the default), edges without residual capacity are
        ignored — the residual-graph behaviour min-cost flow needs.

    Returns
    -------
    (dist, parent_edge):
        ``dist[v]`` is the cheapest cost from source to ``v`` (``inf``
        when unreachable); ``parent_edge[v]`` is the edge index entering
        ``v`` on that path (``-1`` for the source / unreachable nodes).
    """
    if not 0 <= source < net.n_nodes:
        raise IndexError(f"source {source} out of range [0, {net.n_nodes})")
    n = net.n_nodes
    dist = [float("inf")] * n
    parent_edge = [-1] * n
    in_queue = [False] * n
    relax_count = [0] * n
    dist[source] = 0.0
    queue: deque[int] = deque([source])
    in_queue[source] = True
    relaxations = 0
    while queue:
        u = queue.popleft()
        in_queue[u] = False
        du = dist[u]
        for i in net.adj[u]:
            edge = net.edges[i]
            if skip_saturated and edge.residual <= _EPS:
                continue
            v = edge.head
            nd = du + edge.cost
            if nd < dist[v] - _EPS:
                dist[v] = nd
                parent_edge[v] = i
                relaxations += 1
                if not in_queue[v]:
                    relax_count[v] += 1
                    if relax_count[v] > n:
                        raise ValueError(
                            "negative-cost cycle detected reachable from "
                            f"source {source}"
                        )
                    # SLF heuristic: small labels jump the queue.
                    if queue and nd < dist[queue[0]]:
                        queue.appendleft(v)
                    else:
                        queue.append(v)
                    in_queue[v] = True
    tele = telemetry.current()
    if tele is not None:
        tele.spfa_relaxations += relaxations
    return dist, parent_edge


def extract_path(
    net: FlowNetwork, parent_edge: list[int], source: int, target: int
) -> list[int]:
    """Reconstruct the edge-index path source → target from SPFA output.

    Raises ``ValueError`` when ``target`` was unreachable.
    """
    if parent_edge[target] == -1 and target != source:
        raise ValueError(f"target {target} unreachable from source {source}")
    path: list[int] = []
    v = target
    while v != source:
        e = parent_edge[v]
        path.append(e)
        v = net.edges[e ^ 1].head
    path.reverse()
    return path
