"""Classic maximum-flow solvers.

These reference implementations (Edmonds–Karp and Dinic) validate the
scheduling-specific search in :mod:`repro.core.search` on small networks
and serve as the generic substrate wherever a plain max-flow is needed.
"""

from __future__ import annotations

from collections import deque

from repro.flownet.graph import FlowNetwork

_EPS = 1e-9


def edmonds_karp(net: FlowNetwork, source: int, sink: int) -> float:
    """Maximum flow by BFS augmenting paths; O(V · E²).

    Mutates ``net`` in place (edge flows) and returns the flow value.
    """
    _check_endpoints(net, source, sink)
    total = 0.0
    while True:
        parent_edge = _bfs_augmenting_path(net, source, sink)
        if parent_edge is None:
            return total
        # find bottleneck along the path, then push
        bottleneck = float("inf")
        v = sink
        while v != source:
            e = parent_edge[v]
            bottleneck = min(bottleneck, net.edges[e].residual)
            v = net.edges[e ^ 1].head
        v = sink
        while v != source:
            e = parent_edge[v]
            net.push(e, bottleneck)
            v = net.edges[e ^ 1].head
        total += bottleneck


def _bfs_augmenting_path(
    net: FlowNetwork, source: int, sink: int
) -> list[int] | None:
    """Return per-node incoming edge index on a shortest augmenting path."""
    parent_edge = [-1] * net.n_nodes
    parent_edge[source] = -2
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for i in net.adj[u]:
            edge = net.edges[i]
            if edge.residual > _EPS and parent_edge[edge.head] == -1:
                parent_edge[edge.head] = i
                if edge.head == sink:
                    return parent_edge
                queue.append(edge.head)
    return None


def dinic(net: FlowNetwork, source: int, sink: int) -> float:
    """Maximum flow by Dinic's blocking flows; O(V² · E).

    Mutates ``net`` in place and returns the flow value.
    """
    _check_endpoints(net, source, sink)
    total = 0.0
    while True:
        level = _bfs_levels(net, source, sink)
        if level[sink] < 0:
            return total
        iter_state = [0] * net.n_nodes
        while True:
            pushed = _dfs_blocking(
                net, source, sink, float("inf"), level, iter_state
            )
            if pushed <= _EPS:
                break
            total += pushed


def _bfs_levels(net: FlowNetwork, source: int, sink: int) -> list[int]:
    level = [-1] * net.n_nodes
    level[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for i in net.adj[u]:
            edge = net.edges[i]
            if edge.residual > _EPS and level[edge.head] < 0:
                level[edge.head] = level[u] + 1
                queue.append(edge.head)
    return level


def _dfs_blocking(
    net: FlowNetwork,
    u: int,
    sink: int,
    limit: float,
    level: list[int],
    iter_state: list[int],
) -> float:
    if u == sink:
        return limit
    while iter_state[u] < len(net.adj[u]):
        i = net.adj[u][iter_state[u]]
        edge = net.edges[i]
        if edge.residual > _EPS and level[edge.head] == level[u] + 1:
            pushed = _dfs_blocking(
                net,
                edge.head,
                sink,
                min(limit, edge.residual),
                level,
                iter_state,
            )
            if pushed > _EPS:
                net.push(i, pushed)
                return pushed
        iter_state[u] += 1
    return 0.0


def _check_endpoints(net: FlowNetwork, source: int, sink: int) -> None:
    for name, node in (("source", source), ("sink", sink)):
        if not 0 <= node < net.n_nodes:
            raise IndexError(f"{name} {node} out of range [0, {net.n_nodes})")
    if source == sink:
        raise ValueError("source and sink must differ")
