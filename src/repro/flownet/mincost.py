"""Min-cost max-flow by successive shortest paths (SPFA-based).

The Quincy scheduling model — Firmament's QUINCY policy — maps container
placement to a min-cost flow problem.  This solver is the generic engine
behind :mod:`repro.baselines.firmament` and is also used by tests to
cross-check the Aladdin search on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flownet.graph import FlowNetwork
from repro.flownet.spfa import extract_path, spfa

_EPS = 1e-9


@dataclass(frozen=True)
class MinCostFlowResult:
    """Outcome of a min-cost max-flow computation."""

    flow: float
    cost: float
    augmentations: int


def min_cost_max_flow(
    net: FlowNetwork,
    source: int,
    sink: int,
    max_flow: float = float("inf"),
) -> MinCostFlowResult:
    """Push up to ``max_flow`` units of minimum-cost flow source → sink.

    Each iteration runs SPFA on the residual graph and augments along
    the cheapest path by its bottleneck.  Mutates ``net`` in place.
    Terminates when the sink becomes unreachable or ``max_flow`` is met.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    total_flow = 0.0
    total_cost = 0.0
    augmentations = 0
    while total_flow < max_flow - _EPS:
        dist, parent_edge = spfa(net, source)
        if dist[sink] == float("inf"):
            break
        path = extract_path(net, parent_edge, source, sink)
        bottleneck = min(net.edges[e].residual for e in path)
        bottleneck = min(bottleneck, max_flow - total_flow)
        if bottleneck <= _EPS:
            break
        for e in path:
            net.push(e, bottleneck)
        total_flow += bottleneck
        total_cost += bottleneck * dist[sink]
        augmentations += 1
    return MinCostFlowResult(
        flow=total_flow, cost=total_cost, augmentations=augmentations
    )
