"""Shared scheduler interface.

Every scheduler in the reproduction — Aladdin and the Table-I baselines —
consumes an ordered container stream plus a mutable
:class:`~repro.cluster.state.ClusterState` and produces a
:class:`ScheduleResult`.  The simulator only depends on this module, so
schedulers are interchangeable in every experiment.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field

from repro.cluster.container import Container
from repro.cluster.state import ClusterState
from repro.telemetry import SchedulerTelemetry


class FailureReason(enum.Enum):
    """Why a container could not be deployed.

    The breakdown feeds Fig. 9(e): an undeployed container whose
    placement was blocked purely by anti-affinity (resources existed) is
    an anti-affinity failure; resource exhaustion and priority pressure
    are tracked separately.
    """

    ANTI_AFFINITY = "anti_affinity"
    RESOURCES = "resources"
    PREEMPTED = "preempted"


@dataclass
class ScheduleResult:
    """Outcome of scheduling one container stream.

    ``placements`` maps container id → machine id for every deployed
    container.  ``violating`` lists containers deployed *in violation*
    of an anti-affinity rule (some baselines knowingly do this);
    ``undeployed`` maps failed containers to their failure reason.
    """

    placements: dict[int, int] = field(default_factory=dict)
    undeployed: dict[int, FailureReason] = field(default_factory=dict)
    violating: set[int] = field(default_factory=set)
    migrations: int = 0
    preemptions: int = 0
    #: machines examined / paths explored — the algorithm-overhead proxy
    explored: int = 0
    #: scheduler-reported wall-clock seconds spent inside schedule()
    elapsed_s: float = 0.0
    #: counters and phase timings collected during schedule(); ``None``
    #: for schedulers that predate the telemetry layer
    telemetry: SchedulerTelemetry | None = None

    @property
    def n_deployed(self) -> int:
        return len(self.placements)

    @property
    def n_undeployed(self) -> int:
        return len(self.undeployed)

    @property
    def n_total(self) -> int:
        return self.n_deployed + self.n_undeployed

    def merge(self, other: "ScheduleResult") -> None:
        """Fold another result (e.g. a later window) into this one."""
        overlap = self.placements.keys() & other.placements.keys()
        if overlap:
            raise ValueError(f"containers scheduled twice: {sorted(overlap)[:5]}")
        self.placements.update(other.placements)
        self.undeployed.update(other.undeployed)
        self.violating.update(other.violating)
        self.migrations += other.migrations
        self.preemptions += other.preemptions
        self.explored += other.explored
        self.elapsed_s += other.elapsed_s
        if other.telemetry is not None:
            if self.telemetry is None:
                self.telemetry = SchedulerTelemetry()
            self.telemetry.merge(other.telemetry)


class Scheduler(abc.ABC):
    """Base class for all schedulers."""

    #: Display name used in experiment tables (e.g. ``"Aladdin(16)"``).
    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(
        self, containers: list[Container], state: ClusterState
    ) -> ScheduleResult:
        """Place ``containers`` (already in arrival order) onto ``state``.

        Implementations mutate ``state`` (deployments, migrations,
        evictions) and must keep it consistent with the returned
        ``placements``: every placement is reflected in ``state`` and
        vice versa.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
