"""Fig. 8 — workload features of the (synthetic) Alibaba trace.

(a) CDF of container counts per application;
(b) the number of applications with anti-affinity / priority constraints.

Paper references (full scale): 13,056 applications, ~100,000 containers,
9,400 with anti-affinity, 2,088 with priority, 64 % single-instance,
a tail above 2,000 containers, max demand 16 CPU / 32 GB, several LLAs
conflicting with >= 5,000 containers.
"""

from repro.report import format_series, paper_vs_measured
from repro.trace import workload_stats
from repro.trace.arrival import anti_affinity_degree
from repro.trace.stats import container_count_cdf

from benchmarks.conftest import SCALE, once


def test_fig8a_container_cdf(benchmark, trace, capsys):
    cdf = once(benchmark, lambda: container_count_cdf(trace))
    with capsys.disabled():
        print("\n" + format_series(
            "Fig. 8(a): CDF of containers per application",
            [(f"<= {p}", frac) for p, frac in cdf],
        ))
    fractions = [f for _, f in cdf]
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0
    # 64 % single-instance at full scale; sampling noise at small scale.
    assert 0.55 <= fractions[0] <= 0.70


def test_fig8b_constraint_counts(benchmark, trace, capsys):
    stats = once(benchmark, lambda: workload_stats(trace))
    heavy = sum(
        1
        for a in trace.applications
        if anti_affinity_degree(a, trace) >= trace.config.big_conflict_coverage
    )
    rows = [
        ("total applications", round(13056 * SCALE), stats.n_apps),
        ("total containers", round(100_000 * SCALE), stats.n_containers),
        ("apps with anti-affinity", round(9400 * SCALE), stats.n_anti_affinity_apps),
        ("apps with priority", round(2088 * SCALE), stats.n_priority_apps),
        ("single-instance fraction", 0.64, stats.frac_single_instance),
        ("max containers per app", f">= {round(2000 * SCALE)}", stats.max_containers_per_app),
        ("max CPU / mem demand", "16 / 32", f"{stats.max_cpu_demand:g} / {stats.max_mem_demand_gb:g}"),
        ("apps conflicting with >= 5k-scaled ctrs", ">= 3", heavy),
    ]
    with capsys.disabled():
        print("\n" + paper_vs_measured(rows, title="Fig. 8(b): workload features"))
    assert stats.n_apps == round(13056 * SCALE)
    assert abs(stats.n_anti_affinity_apps - 9400 * SCALE) <= 0.01 * stats.n_apps + 2
    assert abs(stats.n_priority_apps - 2088 * SCALE) <= 0.01 * stats.n_apps + 2
    assert heavy >= 3
