"""Fig. 11 — per-machine resource-utilization ranges.

For each scheduler × arrival order, the range (min..max) and average of
CPU utilization across used machines.  The paper's reading: Aladdin's
(and Quincy's) flow-based placements keep the utilization band tight and
high; Go-Kube's spreading leaves a wide band with a low average.
"""

import pytest

from repro import (
    AladdinScheduler,
    ArrivalOrder,
    FirmamentPolicy,
    FirmamentScheduler,
    GoKubeScheduler,
    MedeaScheduler,
    MedeaWeights,
)
from repro.report import format_table

from benchmarks.conftest import once

ORDERS = [ArrivalOrder.CHP, ArrivalOrder.CLP, ArrivalOrder.CLA, ArrivalOrder.CSA]


def comparators():
    return [
        GoKubeScheduler(),
        FirmamentScheduler(FirmamentPolicy.QUINCY, reschd=8),
        MedeaScheduler(MedeaWeights(1, 1, 0)),
        AladdinScheduler(),
    ]


@pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
def test_fig11_utilization_ranges(benchmark, order, open_sim, capsys):
    def run_order():
        return [open_sim.run(s, order).metrics for s in comparators()]

    metrics = once(benchmark, run_order)
    rows = [
        [
            m.scheduler,
            f"{m.utilization_min:.0%}",
            f"{m.utilization_max:.0%}",
            f"{m.utilization_mean:.0%}",
        ]
        for m in metrics
    ]
    with capsys.disabled():
        print("\n" + format_table(
            ["scheduler", "min util", "max util", "avg util"],
            rows,
            title=f"Fig. 11 [{order.value}]",
        ))
    by_name = {m.scheduler: m for m in metrics}
    aladdin = next(m for n, m in by_name.items() if n.startswith("Aladdin"))
    kube = by_name["Go-Kube"]
    # Aladdin's average utilization beats the spreading scheduler's.
    assert aladdin.utilization_mean > kube.utilization_mean
    # Aladdin keeps most machines near-full: max utilization is ~100 %.
    assert aladdin.utilization_max >= 0.95


def test_fig11_aladdin_band_is_tight(open_sim, benchmark, capsys):
    """Aladdin's mean utilization is high and stable across orders."""

    def means():
        return [
            open_sim.run(AladdinScheduler(), order).metrics.utilization_mean
            for order in ORDERS
        ]

    values = once(benchmark, means)
    with capsys.disabled():
        print("\nFig. 11: Aladdin avg utilization per order:",
              [f"{v:.0%}" for v in values])
    assert min(values) >= 0.5
    assert max(values) - min(values) <= 0.15
