"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper and prints
paper-vs-measured rows next to the timing.  ``REPRO_SCALE`` (default
0.05 = 1/20 of the paper's trace) and ``REPRO_SEED`` control the
workload; percentages and orderings are scale-invariant by construction
(see DESIGN.md §4), absolute machine/latency numbers are not.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro import Simulator, generate_trace

SCALE = float(os.environ.get("REPRO_SCALE", "0.05"))
SEED = int(os.environ.get("REPRO_SEED", "0"))


@pytest.fixture(scope="session")
def trace():
    """The synthetic Alibaba-like trace used by every benchmark."""
    return generate_trace(scale=SCALE, seed=SEED)


@pytest.fixture(scope="session")
def pressured_sim(trace):
    """Fig. 9 setting: a fixed cluster holding ~92 % total demand.

    The paper schedules ~100k containers onto exactly 10k machines; the
    synthetic trace's absolute demand wobbles a little with the seed, so
    the cluster is sized to the same 92 % load factor Aladdin's 9,242
    used machines imply.
    """
    total_cpu = sum(a.cpu * a.n_containers for a in trace.applications)
    n_machines = max(1, round(total_cpu / 32.0 / 0.92))
    return Simulator(trace, n_machines=n_machines)


@pytest.fixture(scope="session")
def open_sim(trace):
    """Fig. 10/11 setting: an enlarged pool so machine *usage* is the
    measured quantity (Go-Kube uses 14,211 machines against the paper's
    10k-machine trace, i.e. the pool must not clip inefficiency)."""
    return Simulator(trace, machine_pool_factor=1.6)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
