"""Fig. 12 — average placement latency vs cluster size.

Equation 11: total scheduling time divided by container count, swept
over growing machine counts for Go-Kube, Firmament-QUINCY, Medea,
Aladdin, Aladdin+IL and Aladdin+IL+DL.

Paper shape: Go-Kube and Medea grow with cluster scale (Go-Kube past
one second); Firmament-QUINCY stays low and flat; the three Aladdin
variants sit between, and IL+DL cuts plain Aladdin's latency by ~50 %.
Our absolute milliseconds are Python, not C++/Go — the *relative*
ordering and the IL/DL saving are the reproduced quantities; we report
the machines-examined counter next to wall time because it is the
hardware-independent form of the same measurement.
"""

import pytest

from repro import (
    AladdinConfig,
    AladdinScheduler,
    ArrivalOrder,
    FirmamentPolicy,
    FirmamentScheduler,
    GoKubeScheduler,
    MedeaScheduler,
    MedeaWeights,
    Simulator,
)
from repro.report import format_series

from benchmarks.conftest import once

POLICIES = {
    "Go-Kube": lambda: GoKubeScheduler(),
    "Firmament-QUINCY": lambda: FirmamentScheduler(FirmamentPolicy.QUINCY, reschd=8),
    "Medea": lambda: MedeaScheduler(MedeaWeights(1, 1, 0)),
    "Aladdin": lambda: AladdinScheduler(
        AladdinConfig(enable_il=False, enable_dl=False)
    ),
    "Aladdin+IL": lambda: AladdinScheduler(AladdinConfig(enable_dl=False)),
    "Aladdin+IL+DL": lambda: AladdinScheduler(),
}


def cluster_sizes(trace):
    n = trace.config.n_machines
    return [n, 2 * n, 4 * n]


_latency: dict[str, list[tuple[int, float]]] = {}
_explored: dict[str, list[tuple[int, int]]] = {}


@pytest.mark.parametrize("policy", list(POLICIES))
def test_fig12_latency_curve(benchmark, policy, trace, capsys):
    factory = POLICIES[policy]

    def sweep():
        lat, exp = [], []
        for n in cluster_sizes(trace):
            result = Simulator(trace, n_machines=n).run(
                factory(), ArrivalOrder.TRACE
            )
            lat.append((n, result.metrics.latency_per_container_ms))
            exp.append((n, result.schedule.explored))
        return lat, exp

    lat, exp = once(benchmark, sweep)
    _latency[policy] = lat
    _explored[policy] = exp
    with capsys.disabled():
        print("\n" + format_series(
            f"Fig. 12 [{policy}]: avg placement latency", lat, unit=" ms/ctr"
        ))
    # Latency must not shrink as the cluster grows.
    assert exp[-1][1] >= exp[0][1]


def test_fig12_il_dl_halve_the_search(trace, benchmark, capsys):
    """The paper's claim: latency drops ~50 % with IL+DL vs plain."""

    def ratio():
        needed = ("Aladdin", "Aladdin+IL+DL", "Aladdin+IL")
        for name in needed:
            if name not in _explored:
                factory = POLICIES[name]
                n = cluster_sizes(trace)[-1]
                result = Simulator(trace, n_machines=n).run(factory())
                _explored[name] = [(n, result.schedule.explored)]
                _latency[name] = [
                    (n, result.metrics.latency_per_container_ms)
                ]
        plain = _explored["Aladdin"][-1][1]
        il = _explored["Aladdin+IL"][-1][1]
        pruned = _explored["Aladdin+IL+DL"][-1][1]
        return plain, il, pruned

    plain, il, pruned = once(benchmark, ratio)
    with capsys.disabled():
        print(
            f"\nFig. 12: machines examined — Aladdin {plain:,} -> +IL {il:,} "
            f"-> +IL+DL {pruned:,} ({pruned / plain:.0%} of plain; paper ~50%)"
        )
    assert pruned <= 0.6 * plain
    assert il <= plain
    assert pruned <= il


def test_fig12_aladdin_outpaces_go_kube(trace, benchmark, capsys):
    """At every cluster size, Aladdin+IL+DL examines far fewer machines
    than Go-Kube: IL amortises the feasibility scan per *application*
    (Section III.A's |T| -> |A| reduction) while Go-Kube scores the
    whole cluster per *container*."""

    def series_for(policy):
        if policy not in _explored or len(_explored[policy]) < 2:
            factory = POLICIES[policy]
            _explored[policy] = []
            for n in cluster_sizes(trace):
                result = Simulator(trace, n_machines=n).run(factory())
                _explored[policy].append((n, result.schedule.explored))
        return _explored[policy]

    def compute():
        return series_for("Aladdin+IL+DL"), series_for("Go-Kube")

    aladdin, kube = once(benchmark, compute)
    with capsys.disabled():
        for (n, a), (_, k) in zip(aladdin, kube):
            print(
                f"\nFig. 12: machines examined at {n} machines — "
                f"Aladdin+IL+DL {a:,} vs Go-Kube {k:,} ({k / a:.1f}x)"
            )
    for (n, a), (_, k) in zip(aladdin, kube):
        assert a * 2 < k, f"at {n} machines"
