"""Fig. 12 — average placement latency vs cluster size.

Equation 11: total scheduling time divided by container count, swept
over growing machine counts for Go-Kube, Firmament-QUINCY, Medea,
Aladdin, Aladdin+IL and Aladdin+IL+DL.

Paper shape: Go-Kube and Medea grow with cluster scale (Go-Kube past
one second); Firmament-QUINCY stays low and flat; the three Aladdin
variants sit between, and IL+DL cuts plain Aladdin's latency by ~50 %.
Our absolute milliseconds are Python, not C++/Go — the *relative*
ordering and the IL/DL saving are the reproduced quantities; we report
the machines-examined counter next to wall time because it is the
hardware-independent form of the same measurement.
"""

import pytest

from repro import (
    AladdinConfig,
    AladdinScheduler,
    ArrivalOrder,
    FirmamentPolicy,
    FirmamentScheduler,
    GoKubeScheduler,
    MedeaScheduler,
    MedeaWeights,
    Simulator,
)
from repro.report import format_series

from benchmarks.conftest import once

POLICIES = {
    "Go-Kube": lambda: GoKubeScheduler(),
    "Firmament-QUINCY": lambda: FirmamentScheduler(FirmamentPolicy.QUINCY, reschd=8),
    "Medea": lambda: MedeaScheduler(MedeaWeights(1, 1, 0)),
    "Aladdin": lambda: AladdinScheduler(
        AladdinConfig(enable_il=False, enable_dl=False)
    ),
    # The cross-round cache and the batch kernel are held off here so
    # the curve isolates the paper's IL/DL prunings; the ablations
    # below measure each optimisation on its own.
    "Aladdin+IL": lambda: AladdinScheduler(
        AladdinConfig(enable_dl=False, enable_feasibility_cache=False)
    ),
    "Aladdin+IL+DL": lambda: AladdinScheduler(
        AladdinConfig(
            enable_feasibility_cache=False, enable_batch_kernel=False
        )
    ),
}


def cluster_sizes(trace):
    n = trace.config.n_machines
    return [n, 2 * n, 4 * n]


_latency: dict[str, list[tuple[int, float]]] = {}
_explored: dict[str, list[tuple[int, int]]] = {}


@pytest.mark.parametrize("policy", list(POLICIES))
def test_fig12_latency_curve(benchmark, policy, trace, capsys):
    factory = POLICIES[policy]

    def sweep():
        lat, exp = [], []
        for n in cluster_sizes(trace):
            result = Simulator(trace, n_machines=n).run(
                factory(), ArrivalOrder.TRACE
            )
            lat.append((n, result.metrics.latency_per_container_ms))
            exp.append((n, result.schedule.explored))
        return lat, exp

    lat, exp = once(benchmark, sweep)
    _latency[policy] = lat
    _explored[policy] = exp
    with capsys.disabled():
        print("\n" + format_series(
            f"Fig. 12 [{policy}]: avg placement latency", lat, unit=" ms/ctr"
        ))
    # Latency must not shrink as the cluster grows.
    assert exp[-1][1] >= exp[0][1]


def test_fig12_il_dl_halve_the_search(trace, benchmark, capsys):
    """The paper's claim: latency drops ~50 % with IL+DL vs plain."""

    def ratio():
        needed = ("Aladdin", "Aladdin+IL+DL", "Aladdin+IL")
        for name in needed:
            if name not in _explored:
                factory = POLICIES[name]
                n = cluster_sizes(trace)[-1]
                result = Simulator(trace, n_machines=n).run(factory())
                _explored[name] = [(n, result.schedule.explored)]
                _latency[name] = [
                    (n, result.metrics.latency_per_container_ms)
                ]
        plain = _explored["Aladdin"][-1][1]
        il = _explored["Aladdin+IL"][-1][1]
        pruned = _explored["Aladdin+IL+DL"][-1][1]
        return plain, il, pruned

    plain, il, pruned = once(benchmark, ratio)
    with capsys.disabled():
        print(
            f"\nFig. 12: machines examined — Aladdin {plain:,} -> +IL {il:,} "
            f"-> +IL+DL {pruned:,} ({pruned / plain:.0%} of plain; paper ~50%)"
        )
    assert pruned <= 0.6 * plain
    assert il <= plain
    assert pruned <= il


def test_fig12_cross_round_cache_ablation(trace, benchmark, capsys):
    """Beyond Fig. 12: the cross-round feasibility cache under churn.

    The IL/DL ablation above measures one burst round; this one measures
    the *repeated-round* cost the online churn workload exposes, where
    successive rounds re-derive feasibility verdicts for machines nothing
    touched.  Cached vs cold-start Aladdin on the same churn stream:
    identical placements (enforced by tests/test_differential.py), fewer
    machines examined, and — once the cluster is large enough that the
    O(machines) scans dominate the fixed bookkeeping — lower wall time.
    The pool factor doubles the Fig. 12 sweep's largest size so the
    scan cost clears the per-query bookkeeping noise floor.
    """
    from repro.sim import OnlineConfig, OnlineSimulator

    cfg = OnlineConfig(ticks=60, seed=0, machine_pool_factor=8.0)
    sim = OnlineSimulator(trace, cfg)

    def cached_run():
        return sim.run(AladdinScheduler())

    def cold_run():
        return sim.run(
            AladdinScheduler(AladdinConfig(enable_feasibility_cache=False))
        )

    def measure():
        # One discarded warm-up (page cache, frequency scaling), then
        # interleaved repetitions so slow drift hits both variants
        # equally; best-of-three damps the residual noise.  The explored
        # counters are deterministic — any single run of each serves.
        cold_run()
        cached_runs, cold_runs = [], []
        for _ in range(3):
            cold_runs.append(cold_run())
            cached_runs.append(cached_run())
        return cached_runs, cold_runs

    cached_runs, cold_runs = once(benchmark, measure)
    cached, cold = cached_runs[0], cold_runs[0]
    cached_s = min(r.total_elapsed_s for r in cached_runs)
    cold_s = min(r.total_elapsed_s for r in cold_runs)
    explored_cached = sum(s.explored for s in cached.samples)
    explored_cold = sum(s.explored for s in cold.samples)
    tele = cached.telemetry
    with capsys.disabled():
        print(
            f"\nFig. 12+: churn scheduling wall time over {cfg.ticks} arrival "
            f"ticks ({sim._topology.n_machines} machines) — cold "
            f"{cold_s * 1000:.0f} ms -> cached {cached_s * 1000:.0f} ms "
            f"({cached_s / cold_s:.2f}x); machines examined "
            f"{explored_cold:,} -> {explored_cached:,}; cache hit rate "
            f"{tele.cache_hit_rate:.1%} ({tele.cache_hits:,} hits, "
            f"{tele.cache_invalidations:,} invalidations)"
        )
    # Identical outcomes, deterministic counters.
    assert cached.canonical_json() != cold.canonical_json()  # explored differs
    assert [s.running_containers for s in cached.samples] == [
        s.running_containers for s in cold.samples
    ]
    assert cached.total_migrations == cold.total_migrations
    assert tele.cache_hit_rate > 0.0
    assert cold.telemetry.cache_hits == 0
    assert explored_cached < explored_cold
    # The headline: repeated-round scheduling is cheaper with the cache.
    assert cached_s < cold_s


def test_fig12_batch_kernel_ablation(trace, benchmark, capsys):
    """Beyond Fig. 12: the batched placement kernel under churn.

    Same protocol as the cache ablation above, along the batched×loop
    axis: both engines keep the cross-round cache (the PR 1 baseline),
    one places blocks through the vectorized kernel over the
    incremental machine index, the other walks containers one by one.
    Identical placements (enforced by tests/test_differential.py);
    the ISSUE's acceptance bar is batched+cached wall time ≤ 0.7x of
    cached-only at this scale.
    """
    from repro.sim import OnlineConfig, OnlineSimulator

    cfg = OnlineConfig(ticks=60, seed=0, machine_pool_factor=8.0)
    sim = OnlineSimulator(trace, cfg)

    def batched_run():
        return sim.run(AladdinScheduler())

    def loop_run():
        return sim.run(
            AladdinScheduler(AladdinConfig(enable_batch_kernel=False))
        )

    def measure():
        loop_run()  # discarded warm-up
        batched_runs, loop_runs = [], []
        for _ in range(3):
            loop_runs.append(loop_run())
            batched_runs.append(batched_run())
        return batched_runs, loop_runs

    batched_runs, loop_runs = once(benchmark, measure)
    batched, loop = batched_runs[0], loop_runs[0]
    batched_s = min(r.total_elapsed_s for r in batched_runs)
    loop_s = min(r.total_elapsed_s for r in loop_runs)
    tele = batched.telemetry
    with capsys.disabled():
        print(
            f"\nFig. 12+: churn scheduling wall time over {cfg.ticks} arrival "
            f"ticks ({sim._topology.n_machines} machines) — loop "
            f"{loop_s * 1000:.0f} ms -> batched {batched_s * 1000:.0f} ms "
            f"({batched_s / loop_s:.2f}x); kernel placed blocks "
            f"{tele.batch_kernel_invocations:,}, index resyncs "
            f"{tele.index_resyncs:,}, machines skipped "
            f"{tele.machines_skipped:,}"
        )
    # Identical outcomes, deterministic counters.
    assert [s.running_containers for s in batched.samples] == [
        s.running_containers for s in loop.samples
    ]
    assert batched.total_migrations == loop.total_migrations
    assert tele.batch_kernel_invocations > 0
    assert loop.telemetry.batch_kernel_invocations == 0
    # The ISSUE's acceptance bar: batched+cached ≤ 0.7x cached-only.
    assert batched_s <= 0.7 * loop_s


def test_fig12_aladdin_outpaces_go_kube(trace, benchmark, capsys):
    """At every cluster size, Aladdin+IL+DL examines far fewer machines
    than Go-Kube: IL amortises the feasibility scan per *application*
    (Section III.A's |T| -> |A| reduction) while Go-Kube scores the
    whole cluster per *container*."""

    def series_for(policy):
        if policy not in _explored or len(_explored[policy]) < 2:
            factory = POLICIES[policy]
            _explored[policy] = []
            for n in cluster_sizes(trace):
                result = Simulator(trace, n_machines=n).run(factory())
                _explored[policy].append((n, result.schedule.explored))
        return _explored[policy]

    def compute():
        return series_for("Aladdin+IL+DL"), series_for("Go-Kube")

    aladdin, kube = once(benchmark, compute)
    with capsys.disabled():
        for (n, a), (_, k) in zip(aladdin, kube):
            print(
                f"\nFig. 12: machines examined at {n} machines — "
                f"Aladdin+IL+DL {a:,} vs Go-Kube {k:,} ({k / a:.1f}x)"
            )
    for (n, a), (_, k) in zip(aladdin, kube):
        assert a * 2 < k, f"at {n} machines"
