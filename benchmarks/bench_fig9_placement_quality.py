"""Fig. 9 — placement quality (constraint violations %).

Four panels sweep the baselines' tuning knobs against a fixed cluster:
Firmament's ``reschd(i)`` for i in {1,2,4,8}, Medea's ``weights(a,b,c)``
over the paper's four settings, Aladdin's weight base over
{16,32,64,128}.  Go-Kube has no knob and repeats in every panel.

Paper references (violations %):
  Go-Kube 21.2 (flat) | Firmament-TRIVIAL 34.7 -> 4.3 |
  Firmament-QUINCY 25.1 -> 3.5 | Firmament-OCTOPUS <= 10.7 |
  Medea 12.9 (c=1) -> 5.2 (c=0) | Aladdin 0 for every base.
Fig. 9(e): the anti-affinity share of all violations is >= 65 %.

Expected reproduction shape: identical orderings and monotonicity;
absolute magnitudes are tempered at small scale (see EXPERIMENTS.md).
"""

import pytest

from repro import (
    AladdinConfig,
    AladdinScheduler,
    FirmamentPolicy,
    FirmamentScheduler,
    GoKubeScheduler,
    MedeaScheduler,
    MedeaWeights,
)
from repro.report import metrics_table

from benchmarks.conftest import once

PANELS = {
    "a": dict(firmament=1, medea=(1, 1, 1), aladdin=16),
    "b": dict(firmament=2, medea=(1, 1, 0.5), aladdin=32),
    "c": dict(firmament=4, medea=(1, 1, 0), aladdin=64),
    "d": dict(firmament=8, medea=(1, 0.5, 0.5), aladdin=128),
}

_collected = {}


@pytest.mark.parametrize("panel", list(PANELS))
def test_fig9_panel(benchmark, panel, pressured_sim, capsys):
    knobs = PANELS[panel]
    schedulers = [
        GoKubeScheduler(),
        FirmamentScheduler(FirmamentPolicy.TRIVIAL, reschd=knobs["firmament"]),
        FirmamentScheduler(FirmamentPolicy.QUINCY, reschd=knobs["firmament"]),
        FirmamentScheduler(FirmamentPolicy.OCTOPUS, reschd=knobs["firmament"]),
        MedeaScheduler(MedeaWeights(*knobs["medea"])),
        AladdinScheduler(AladdinConfig(priority_weight_base=knobs["aladdin"])),
    ]

    def run_panel():
        return [pressured_sim.run(s).metrics for s in schedulers]

    metrics = once(benchmark, run_panel)
    _collected[panel] = metrics
    with capsys.disabled():
        print("\n" + metrics_table(metrics, title=f"Fig. 9({panel})"))

    by_name = {m.scheduler: m for m in metrics}
    aladdin = next(m for n, m in by_name.items() if n.startswith("Aladdin"))
    # Aladdin deploys everything without violations, for every base.
    assert aladdin.violation_pct <= 0.5
    # Aladdin strictly dominates every baseline in the panel.
    for name, m in by_name.items():
        if not name.startswith("Aladdin"):
            assert aladdin.violation_pct <= m.violation_pct + 1e-9, name


def test_fig9_firmament_improves_with_reschd(pressured_sim, benchmark):
    """TRIVIAL/QUINCY violations fall as reschd(i) grows 1 -> 8."""

    def sweep():
        out = {}
        for policy in (FirmamentPolicy.TRIVIAL, FirmamentPolicy.QUINCY):
            out[policy] = [
                pressured_sim.run(
                    FirmamentScheduler(policy, reschd=i)
                ).metrics.violation_pct
                for i in (1, 8)
            ]
        return out

    curves = once(benchmark, sweep)
    for policy, (at_1, at_8) in curves.items():
        assert at_8 < at_1, f"{policy}: {at_1} -> {at_8}"


def test_fig9e_anti_affinity_share(pressured_sim, benchmark, capsys):
    """Fig. 9(e): anti-affinity dominates the violation mix (>= 65 %)."""
    schedulers = [
        FirmamentScheduler(FirmamentPolicy.TRIVIAL, reschd=1),
        FirmamentScheduler(FirmamentPolicy.QUINCY, reschd=1),
        MedeaScheduler(MedeaWeights(1, 1, 1)),
        MedeaScheduler(MedeaWeights(1, 1, 0)),
    ]

    def run_all():
        return [pressured_sim.run(s).metrics for s in schedulers]

    metrics = once(benchmark, run_all)
    with capsys.disabled():
        for m in metrics:
            share = (
                f"{m.anti_affinity_share_pct:.0f}%"
                if m.violation_pct > 0
                else "n/a (no violations)"
            )
            print(
                f"\nFig. 9(e) {m.scheduler:24s} anti-affinity share = "
                f"{share} (paper: >= 65%)"
            )
    checked = 0
    for m in metrics:
        if m.violation_pct > 0:  # a share needs a nonempty violation set
            assert m.anti_affinity_share_pct >= 65.0, m.scheduler
            checked += 1
    assert checked >= 2
