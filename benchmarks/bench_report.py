"""Fig. 12+ ablation report: the optimisation trajectory as JSON.

Runs the online churn workload through the cumulative optimisation
stack — plain Aladdin, +IL+DL, +cross-round cache, +batch kernel,
+parallel workers — and writes the latency trajectory to
``BENCH_fig12.json``.  This is the committed, re-measurable form of the
repository's performance claims: each variant reports best-of-N
scheduling wall time, the deterministic machines-examined counter, and
the telemetry that proves the variant's optimisation was actually in
play.

Entry points (also wired into CI as a non-gating smoke job)::

    PYTHONPATH=src python -m benchmarks.bench_report                # full
    PYTHONPATH=src python -m benchmarks.bench_report --smoke        # CI
    PYTHONPATH=src python -m benchmarks.bench_report --mode rescue  # rescue
    PYTHONPATH=src python -m benchmarks.bench_report --mode serve   # SLO

``--smoke`` refuses to overwrite the committed ``BENCH_fig12.json`` /
``BENCH_rescue.json``: it writes the ``*_smoke.json`` twin unless
``--out`` names another path explicitly (``--force`` overrides).

The default mode reproduces the acceptance-scale measurement: the
0.05-scale trace under ``machine_pool_factor=8.0`` yields a
4000-machine cluster, the scale at which the batched+cached vs
cached-only ratio is asserted (≤ 0.7x) by ``bench_fig12_latency.py``.

``--mode rescue`` measures the Section III.B rescue path instead.  The
calibrated trace never drives the cluster into rescue territory (it is
generated to fit), so this mode builds its own conflict-heavy workload:
a fill phase packs the cluster to ~0.95 utilisation, then churn ticks
evict departures and arrive hot (priority 1–3) replacements, forcing
migration/consolidation/preemption on nearly every tick.  Both rescue
variants — the legacy per-machine loop and the vectorized rescue
kernel — replay the identical stream; the report asserts their
decision counters match and commits the ``phase_time_s["rescue"]``
ratio (kernel ≤ 0.5x legacy) as ``BENCH_rescue.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

from repro import AladdinConfig, AladdinScheduler, generate_trace
from repro.cluster.constraints import ConstraintSet
from repro.cluster.container import Application, containers_of
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.sim import OnlineConfig, OnlineSimulator
from repro.telemetry import SchedulerTelemetry

def host_info() -> dict:
    """Provenance header stamped into every ``BENCH_*.json`` setup.

    A committed measurement is only re-measurable if the report says
    what it was measured *on*: CPU budget, platform, interpreter and
    the git revision of the code that produced it.
    """
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
        git_rev = rev.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        git_rev = None
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_rev": git_rev,
    }


#: The cumulative ablation trajectory, in presentation order.  Each
#: stage adds one optimisation on top of the previous stage.
VARIANTS: dict[str, AladdinConfig] = {
    "plain": AladdinConfig(
        enable_il=False, enable_dl=False,
        enable_feasibility_cache=False, enable_batch_kernel=False,
    ),
    "+IL+DL": AladdinConfig(
        enable_feasibility_cache=False, enable_batch_kernel=False,
    ),
    "+cache": AladdinConfig(enable_batch_kernel=False),
    "+batch": AladdinConfig(),  # everything on: the production default
}


def measure(
    trace, cfg: OnlineConfig, variant: AladdinConfig, repeats: int
) -> dict:
    """Best-of-``repeats`` churn run of one scheduler variant."""
    sim = OnlineSimulator(trace, cfg)
    runs = [sim.run(AladdinScheduler(variant)) for _ in range(repeats)]
    best = min(runs, key=lambda r: r.total_elapsed_s)
    tele = best.telemetry
    return {
        "wall_time_ms": round(best.total_elapsed_s * 1000, 2),
        "machines_examined": sum(s.explored for s in best.samples),
        "failed": best.total_failed,
        "migrations": best.total_migrations,
        "peak_used_machines": best.peak_used_machines,
        "cache_hits": tele.cache_hits,
        "batch_kernel_invocations": tele.batch_kernel_invocations,
        "index_resyncs": tele.index_resyncs,
        "machines_skipped": tele.machines_skipped,
        "parallel_sweeps": tele.parallel_sweeps,
    }


def run_report(
    scale: float,
    seed: int,
    ticks: int,
    pool_factor: float,
    repeats: int,
    workers: int = 4,
) -> dict:
    trace = generate_trace(scale=scale, seed=seed)
    cfg = OnlineConfig(
        ticks=ticks, seed=seed, machine_pool_factor=pool_factor
    )
    n_machines = max(
        1, round(trace.config.n_machines * pool_factor)
    )
    variants = dict(VARIANTS)
    if workers > 1:
        variants[f"+workers{workers}"] = AladdinConfig(workers=workers)
    report: dict = {
        "figure": "Fig. 12+ (online churn ablation)",
        "setup": {
            "scale": scale,
            "seed": seed,
            "ticks": ticks,
            "machine_pool_factor": pool_factor,
            "n_machines": n_machines,
            "n_containers": trace.n_containers,
            "repeats": repeats,
            "workers": workers,
        },
        "variants": {},
    }
    for name, variant in variants.items():
        report["variants"][name] = measure(trace, cfg, variant, repeats)
        print(
            f"{name:>10}: {report['variants'][name]['wall_time_ms']:8.1f} ms, "
            f"{report['variants'][name]['machines_examined']:>12,} machines examined"
        )
    cached = report["variants"]["+cache"]["wall_time_ms"]
    batched = report["variants"]["+batch"]["wall_time_ms"]
    report["batched_over_cached"] = round(batched / cached, 3) if cached else None
    print(f"batched/cached wall-time ratio: {report['batched_over_cached']}")
    if workers > 1:
        par = report["variants"][f"+workers{workers}"]["wall_time_ms"]
        report["parallel_speedup"] = round(batched / par, 3) if par else None
        print(
            f"parallel speedup at {workers} workers "
            f"({os.cpu_count()} CPUs visible): {report['parallel_speedup']}"
        )
    return report


# ----------------------------------------------------------------------
# --mode rescue: tight-cluster migration/consolidation/preemption bench
# ----------------------------------------------------------------------

#: decision counters that must be bit-identical across the rescue axis
RESCUE_DECISION_COUNTERS = (
    "rescue_attempts",
    "rescue_migrations",
    "rescue_preemptions",
    "rescue_machines_scanned",
)


def rescue_apps(rng, n_apps: int, start_id: int = 0, hot: bool = False):
    """Conflict-heavy applications that make placements collide.

    Conflicts are drawn against the trailing 60 applications so the
    blacklists stay dense as the stream grows; ``hot`` arrivals carry
    priority 1–3, which is what arms the preemption strategy against
    the priority-0 residents of the fill phase.
    """
    apps = []
    for i in range(start_id, start_id + n_apps):
        conflicts = frozenset(
            j for j in range(max(0, i - 60), i) if rng.random() < 0.15
        )
        apps.append(
            Application(
                app_id=i,
                n_containers=int(rng.integers(1, 6)),
                cpu=float(rng.choice([2.0, 4.0, 8.0, 12.0, 16.0, 24.0])),
                mem_gb=float(rng.choice([4.0, 8.0, 16.0, 32.0])),
                priority=int(rng.integers(1, 4)) if hot else int(rng.integers(0, 3)),
                anti_affinity_within=bool(rng.random() < 0.5),
                anti_affinity_scope="rack" if rng.random() < 0.25 else "machine",
                conflicts=conflicts,
            )
        )
    return apps


def build_rescue_stream(
    seed: int, n_apps: int, util_target: float, churn_ticks: int
):
    """One deterministic fill+churn stream both variants replay.

    The machine pool is sized so that the fill phase alone lands at
    ``util_target`` CPU utilisation — every churn arrival after that
    has to fight for space through the rescue path.
    """
    rng = np.random.default_rng(seed)
    fill = rescue_apps(rng, n_apps)
    churn = []
    next_id = n_apps
    all_apps = list(fill)
    for t in range(churn_ticks):
        newapps = rescue_apps(rng, 6, start_id=next_id, hot=True)
        next_id += 6
        departs = [
            int(x)
            for x in rng.choice(n_apps + t * 6, size=6, replace=False)
        ]
        churn.append((newapps, departs))
        all_apps.extend(newapps)
    containers = containers_of(all_apps)
    by_app: dict[int, list] = {}
    for c in containers:
        by_app.setdefault(c.app_id, []).append(c)
    fill_cpu = sum(c.cpu for a in fill for c in by_app[a.app_id])
    n_machines = max(4, int(np.ceil(fill_cpu / (32.0 * util_target))))
    return all_apps, fill, churn, by_app, n_machines


def measure_rescue(stream, variant: AladdinConfig, repeats: int) -> dict:
    """Best-of-``repeats`` replay of the rescue stream for one variant.

    The decision counters are deterministic across repeats (asserted);
    only the phase timings take the best-of treatment.
    """
    best = None
    for _ in range(repeats):
        run = _replay_rescue_stream(stream, variant)
        if best is None or run["rescue_ms"] < best["rescue_ms"]:
            if best is not None:
                for key in RESCUE_DECISION_COUNTERS:
                    assert run[key] == best[key], (
                        f"nondeterministic rescue counter {key}"
                    )
            best = run
    return best


def _replay_rescue_stream(stream, variant: AladdinConfig) -> dict:
    all_apps, fill, churn, by_app, n_machines = stream
    constraints = ConstraintSet.from_applications(all_apps)
    state = ClusterState(
        build_cluster(n_machines, machines_per_rack=8), constraints
    )
    engine = AladdinScheduler(variant)
    total = SchedulerTelemetry()
    elapsed = 0.0
    placed = failed = 0

    def sched(batch):
        nonlocal elapsed, placed, failed
        t0 = time.perf_counter()
        result = engine.schedule(batch, state)
        elapsed += time.perf_counter() - t0
        if result.telemetry:
            total.merge(result.telemetry)
        placed += len(result.placements)
        failed += result.n_undeployed

    for i in range(0, len(fill), 10):
        sched([c for a in fill[i : i + 10] for c in by_app[a.app_id]])
    for newapps, departs in churn:
        for app_id in departs:
            for c in by_app.get(app_id, []):
                if c.container_id in state.assignment:
                    state.evict(c.container_id)
        sched([c for app in newapps for c in by_app[app.app_id]])
    util = float(
        1.0 - state.available[:, 0].sum() / (n_machines * 32.0)
    )
    return {
        "rescue_ms": round(total.phase_time_s.get("rescue", 0.0) * 1000, 1),
        "wall_time_ms": round(elapsed * 1000, 1),
        "final_utilization": round(util, 3),
        "placed": placed,
        "failed": failed,
        "rescue_attempts": total.rescue_attempts,
        "rescue_migrations": total.rescue_migrations,
        "rescue_preemptions": total.rescue_preemptions,
        "rescue_machines_scanned": total.rescue_machines_scanned,
        "rescue_kernel_invocations": total.rescue_kernel_invocations,
    }


def run_rescue_report(
    seed: int, n_apps: int, util_target: float, churn_ticks: int,
    repeats: int,
) -> dict:
    stream = build_rescue_stream(seed, n_apps, util_target, churn_ticks)
    report: dict = {
        "figure": "Section III.B (rescue path: kernel vs legacy loop)",
        "setup": {
            "seed": seed,
            "n_apps": n_apps,
            "util_target": util_target,
            "churn_ticks": churn_ticks,
            "n_machines": stream[4],
            "repeats": repeats,
        },
        "variants": {},
    }
    variants = {
        "legacy-loop": AladdinConfig(enable_rescue_kernel=False),
        "rescue-kernel": AladdinConfig(),
    }
    for name, variant in variants.items():
        row = measure_rescue(stream, variant, repeats)
        report["variants"][name] = row
        print(
            f"{name:>14}: rescue {row['rescue_ms']:7.1f} ms, "
            f"wall {row['wall_time_ms']:7.1f} ms, "
            f"{row['rescue_attempts']} attempts, "
            f"{row['rescue_migrations']} migrations, "
            f"{row['rescue_preemptions']} preemptions"
        )
    legacy = report["variants"]["legacy-loop"]
    kernel = report["variants"]["rescue-kernel"]
    report["decisions_identical"] = all(
        legacy[key] == kernel[key] for key in RESCUE_DECISION_COUNTERS
    )
    report["kernel_over_legacy_rescue"] = (
        round(kernel["rescue_ms"] / legacy["rescue_ms"], 3)
        if legacy["rescue_ms"]
        else None
    )
    print(
        f"decisions identical: {report['decisions_identical']}; "
        f"kernel/legacy rescue-phase ratio: "
        f"{report['kernel_over_legacy_rescue']}"
    )
    if not report["decisions_identical"]:
        raise SystemExit("rescue kernel diverged from the legacy loop")
    return report


# ----------------------------------------------------------------------
# --mode restore: warm cache resync vs cold rebuild after a restart
# ----------------------------------------------------------------------
def run_restore_report(
    scale: float, seed: int, pool_factor: float, repeats: int
) -> dict:
    """First-round-after-restart latency: cold rebuild vs warm resync.

    Warms an engine over the whole calibrated trace (many rounds, many
    demand signatures), checkpoints engine + state, dirties a small
    churn window, then measures the *first scheduling round* of

    * ``cold-rebuild`` — a fresh engine on the restored state, which
      recomputes every feasibility mask and rebuilds the packed-first
      index from scratch, and
    * ``warm-resync`` — ``AladdinScheduler.from_checkpoint``, which
      restarts the caches from the persisted dirty-log watermark and
      recomputes only the churned machines.

    Both rounds must place identically (the caches are semantically
    transparent); the report commits the warm/cold latency ratio.
    """
    trace = generate_trace(scale=scale, seed=seed)
    n_machines = max(1, round(trace.config.n_machines * pool_factor))
    topo = build_cluster(n_machines)
    state = ClusterState(topo, trace.constraints)
    engine = AladdinScheduler()

    by_app: dict[int, list] = {}
    for c in trace.containers:
        by_app.setdefault(c.app_id, []).append(c)
    apps = sorted(by_app)
    n_probe = max(4, len(apps) // 50)
    fill, probe_apps = apps[:-n_probe], apps[-n_probe:]
    probe = [c for a in probe_apps for c in by_app[a]]

    # Warm phase: many rounds over the full demand-signature mix.
    for i in range(0, len(fill), 40):
        batch = [c for a in fill[i : i + 40] for c in by_app[a]]
        engine.schedule(batch, state)
    # A small churn window after the last sync point, so the warm
    # restore has a realistic non-empty dirty set to replay.
    for cid in list(state.assignment)[:: max(1, len(state.assignment) // 64)]:
        state.evict(cid)

    engine_image = engine.checkpoint()
    state_image = state.checkpoint_payload()
    engine.close()

    def first_round(warm: bool) -> tuple[float, dict]:
        rstate = ClusterState.from_payload(state_image, topo, trace.constraints)
        if warm:
            e = AladdinScheduler.from_checkpoint(engine_image, rstate)
        else:
            e = AladdinScheduler()
        t0 = time.perf_counter()
        result = e.schedule(list(probe), rstate)
        dt = time.perf_counter() - t0
        e.close()
        return dt, dict(result.placements)

    report: dict = {
        "figure": "Restore path (warm cache resync vs cold rebuild)",
        "setup": {
            "scale": scale,
            "seed": seed,
            "machine_pool_factor": pool_factor,
            "n_machines": n_machines,
            "n_containers": trace.n_containers,
            "probe_containers": len(probe),
            "repeats": repeats,
        },
        "variants": {},
    }
    placements: dict[str, dict] = {}
    for name, warm in (("cold-rebuild", False), ("warm-resync", True)):
        best = min(
            (first_round(warm) for _ in range(repeats)),
            key=lambda r: r[0],
        )
        placements[name] = best[1]
        report["variants"][name] = {
            "first_round_ms": round(best[0] * 1000, 3),
            "placed": len(best[1]),
        }
        print(f"{name:>13}: first round {best[0] * 1000:8.2f} ms, "
              f"{len(best[1])} placed")
    report["decisions_identical"] = (
        placements["cold-rebuild"] == placements["warm-resync"]
    )
    cold = report["variants"]["cold-rebuild"]["first_round_ms"]
    warm = report["variants"]["warm-resync"]["first_round_ms"]
    report["warm_over_cold"] = round(warm / cold, 3) if cold else None
    print(f"decisions identical: {report['decisions_identical']}; "
          f"warm/cold first-round ratio: {report['warm_over_cold']}")
    if not report["decisions_identical"]:
        raise SystemExit("warm-restored engine diverged from cold rebuild")
    return report


def resolve_out(out: str | None, smoke: bool, force: bool, mode: str = "fig12") -> str:
    """Output-path policy: smoke runs must not clobber the committed
    full measurement.

    Without ``--out`` the full run writes the mode's committed file
    (``BENCH_fig12.json`` / ``BENCH_rescue.json``) and the smoke run
    its ``*_smoke.json`` twin; a smoke run that explicitly names a
    committed file is refused unless forced.
    """
    committed = {
        "fig12": "BENCH_fig12.json",
        "rescue": "BENCH_rescue.json",
        "restore": "BENCH_restore.json",
        "serve": "BENCH_serve.json",
        "solver": "BENCH_solver.json",
        "trace": "BENCH_trace.json",
        "power": "BENCH_power.json",
    }
    if out is None:
        base = committed[mode]
        return base.replace(".json", "_smoke.json") if smoke else base
    if smoke and Path(out).name in committed.values() and not force:
        raise SystemExit(
            f"refusing to overwrite the committed {Path(out).name} with a "
            "--smoke run; pick another --out or pass --force"
        )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fig. 12+ churn ablation -> BENCH_fig12.json"
    )
    parser.add_argument("--mode",
                        choices=("fig12", "rescue", "restore", "serve",
                                 "solver", "trace", "power"),
                        default="fig12",
                        help="fig12: cumulative ablation trajectory; "
                             "rescue: tight-cluster rescue-path kernel "
                             "vs legacy loop; restore: first-round "
                             "latency after a restart, warm cache "
                             "resync vs cold rebuild; serve: closed-loop "
                             "SLO load against the async placement "
                             "service (req/s, p50/p99 decision latency); "
                             "solver: LP window engine vs SPFA and the "
                             "batch kernel at 4k/12k machines; trace: "
                             "Azure-scenario sweep (diurnal/burst/churn-"
                             "storm/mixed-lla vs the LLA-only baseline) "
                             "across the cache/batch/workers axes; "
                             "power: machine-hours and cold-start rate "
                             "per keep-alive policy with the "
                             "autoscaling lifecycle on "
                             "(diurnal/churn-storm vs always-on)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="trace scale (default 0.05 -> 4000 machines "
                             "under the default pool factor)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ticks", type=int, default=60)
    parser.add_argument("--pool-factor", type=float, default=8.0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-time repetitions per variant (best-of)")
    parser.add_argument("--workers", type=int, default=4,
                        help="shard workers for the parallel variant row "
                             "(1 disables the row; default 4)")
    parser.add_argument("--n-apps", type=int, default=240,
                        help="rescue mode: fill-phase application count "
                             "(sizes the machine pool)")
    parser.add_argument("--util-target", type=float, default=0.96,
                        help="rescue mode: fill-phase CPU utilisation "
                             "the pool is sized for")
    parser.add_argument("--churn-ticks", type=int, default=20,
                        help="rescue mode: hot-arrival churn ticks after "
                             "the fill phase")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="serve mode: measured seconds per operating "
                             "point")
    parser.add_argument("--clients", type=int, default=8,
                        help="serve mode: closed-loop clients at the "
                             "saturated operating point")
    parser.add_argument("--batch-size", type=int, default=16,
                        help="serve mode: containers per placement request")
    parser.add_argument("--window-sizes", type=int, nargs="+",
                        default=(64, 256),
                        help="solver mode: containers per scheduling "
                             "window (one benchmark cell per size)")
    parser.add_argument("--solver-scales", type=float, nargs="+",
                        default=(0.05, 0.15),
                        help="solver mode: trace scales (0.05/0.15 under "
                             "the default pool factor -> 4,000 and "
                             "12,000 machines)")
    parser.add_argument("--trace-ticks", type=int, default=48,
                        help="trace mode: tick bins the Azure day is "
                             "folded into (default 48 -> 30-minute "
                             "ticks)")
    parser.add_argument("--n-functions", type=int, default=160,
                        help="trace mode: synthetic-fallback dataset "
                             "size")
    parser.add_argument("--power-pool-factor", type=float, default=2.5,
                        help="power mode machine pool factor: provisions "
                             "for peak concurrency plus cold-start "
                             "lifetime inflation; the lifecycle powers "
                             "the surplus down, always-on pays for it")
    parser.add_argument("--serve-pool-factor", type=float, default=20.0,
                        help="serve mode machine pool factor (20.0 puts "
                             "the default 0.05-scale trace at 10,000 "
                             "machines)")
    parser.add_argument("--out", default=None,
                        help="output path (default per --mode: "
                             "BENCH_fig12.json / BENCH_rescue.json, or "
                             "the *_smoke.json twin under --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: tiny scale, one repetition, "
                             "no ratio assertion")
    parser.add_argument("--force", action="store_true",
                        help="allow a --smoke run to overwrite "
                             "BENCH_fig12.json")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale, args.ticks, args.repeats = 0.02, 20, 1
        args.n_apps, args.churn_ticks = 80, 6
        args.duration, args.clients = 2.0, 4
        args.solver_scales, args.window_sizes = (0.02,), (32,)
        args.trace_ticks, args.n_functions = 16, 64
        if args.mode in ("trace", "power"):
            args.scale = 0.01
    out = resolve_out(args.out, args.smoke, args.force, mode=args.mode)

    if args.mode == "power":
        from benchmarks.bench_power import run_power_report

        report = run_power_report(
            args.scale, args.seed, args.trace_ticks, args.repeats,
            n_functions=args.n_functions,
            pool_factor=args.power_pool_factor,
        )
    elif args.mode == "trace":
        from benchmarks.bench_trace import run_trace_report

        report = run_trace_report(
            args.scale, args.seed, args.trace_ticks, args.repeats,
            n_functions=args.n_functions,
        )
    elif args.mode == "solver":
        from benchmarks.bench_solver import run_solver_report

        report = run_solver_report(
            args.seed, tuple(args.solver_scales),
            tuple(args.window_sizes), args.pool_factor, args.repeats,
        )
    elif args.mode == "serve":
        from benchmarks.bench_serve import run_serve_report

        report = run_serve_report(
            args.scale, args.seed, args.serve_pool_factor,
            args.duration, args.clients, args.batch_size,
        )
    elif args.mode == "rescue":
        report = run_rescue_report(
            args.seed, args.n_apps, args.util_target, args.churn_ticks,
            args.repeats,
        )
    elif args.mode == "restore":
        report = run_restore_report(
            args.scale, args.seed, args.pool_factor, args.repeats
        )
    else:
        report = run_report(
            args.scale, args.seed, args.ticks, args.pool_factor,
            args.repeats, workers=args.workers,
        )
    # Every committed BENCH_*.json carries the same provenance header.
    report.setdefault("setup", {}).update(host_info())
    Path(out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
