"""Fig. 12+ ablation report: the optimisation trajectory as JSON.

Runs the online churn workload through the cumulative optimisation
stack — plain Aladdin, +IL+DL, +cross-round cache, +batch kernel,
+parallel workers — and writes the latency trajectory to
``BENCH_fig12.json``.  This is the committed, re-measurable form of the
repository's performance claims: each variant reports best-of-N
scheduling wall time, the deterministic machines-examined counter, and
the telemetry that proves the variant's optimisation was actually in
play.

Entry point (also wired into CI as a non-gating smoke job)::

    PYTHONPATH=src python -m benchmarks.bench_report            # full
    PYTHONPATH=src python -m benchmarks.bench_report --smoke    # CI

``--smoke`` refuses to overwrite the committed ``BENCH_fig12.json``:
it writes ``BENCH_fig12_smoke.json`` unless ``--out`` names another
path explicitly (``--force`` overrides the guard).

The defaults reproduce the acceptance-scale measurement: the 0.05-scale
trace under ``machine_pool_factor=8.0`` yields a 4000-machine cluster,
the scale at which the batched+cached vs cached-only ratio is asserted
(≤ 0.7x) by ``bench_fig12_latency.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path

from repro import AladdinConfig, AladdinScheduler, generate_trace
from repro.sim import OnlineConfig, OnlineSimulator

#: The cumulative ablation trajectory, in presentation order.  Each
#: stage adds one optimisation on top of the previous stage.
VARIANTS: dict[str, AladdinConfig] = {
    "plain": AladdinConfig(
        enable_il=False, enable_dl=False,
        enable_feasibility_cache=False, enable_batch_kernel=False,
    ),
    "+IL+DL": AladdinConfig(
        enable_feasibility_cache=False, enable_batch_kernel=False,
    ),
    "+cache": AladdinConfig(enable_batch_kernel=False),
    "+batch": AladdinConfig(),  # everything on: the production default
}


def measure(
    trace, cfg: OnlineConfig, variant: AladdinConfig, repeats: int
) -> dict:
    """Best-of-``repeats`` churn run of one scheduler variant."""
    sim = OnlineSimulator(trace, cfg)
    runs = [sim.run(AladdinScheduler(variant)) for _ in range(repeats)]
    best = min(runs, key=lambda r: r.total_elapsed_s)
    tele = best.telemetry
    return {
        "wall_time_ms": round(best.total_elapsed_s * 1000, 2),
        "machines_examined": sum(s.explored for s in best.samples),
        "failed": best.total_failed,
        "migrations": best.total_migrations,
        "peak_used_machines": best.peak_used_machines,
        "cache_hits": tele.cache_hits,
        "batch_kernel_invocations": tele.batch_kernel_invocations,
        "index_resyncs": tele.index_resyncs,
        "machines_skipped": tele.machines_skipped,
        "parallel_sweeps": tele.parallel_sweeps,
    }


def run_report(
    scale: float,
    seed: int,
    ticks: int,
    pool_factor: float,
    repeats: int,
    workers: int = 4,
) -> dict:
    trace = generate_trace(scale=scale, seed=seed)
    cfg = OnlineConfig(
        ticks=ticks, seed=seed, machine_pool_factor=pool_factor
    )
    n_machines = max(
        1, round(trace.config.n_machines * pool_factor)
    )
    variants = dict(VARIANTS)
    if workers > 1:
        variants[f"+workers{workers}"] = AladdinConfig(workers=workers)
    report: dict = {
        "figure": "Fig. 12+ (online churn ablation)",
        "setup": {
            "scale": scale,
            "seed": seed,
            "ticks": ticks,
            "machine_pool_factor": pool_factor,
            "n_machines": n_machines,
            "n_containers": trace.n_containers,
            "repeats": repeats,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "variants": {},
    }
    for name, variant in variants.items():
        report["variants"][name] = measure(trace, cfg, variant, repeats)
        print(
            f"{name:>10}: {report['variants'][name]['wall_time_ms']:8.1f} ms, "
            f"{report['variants'][name]['machines_examined']:>12,} machines examined"
        )
    cached = report["variants"]["+cache"]["wall_time_ms"]
    batched = report["variants"]["+batch"]["wall_time_ms"]
    report["batched_over_cached"] = round(batched / cached, 3) if cached else None
    print(f"batched/cached wall-time ratio: {report['batched_over_cached']}")
    if workers > 1:
        par = report["variants"][f"+workers{workers}"]["wall_time_ms"]
        report["parallel_speedup"] = round(batched / par, 3) if par else None
        print(
            f"parallel speedup at {workers} workers "
            f"({os.cpu_count()} CPUs visible): {report['parallel_speedup']}"
        )
    return report


def resolve_out(out: str | None, smoke: bool, force: bool) -> str:
    """Output-path policy: smoke runs must not clobber the committed
    full measurement.

    Without ``--out`` the full run writes ``BENCH_fig12.json`` and the
    smoke run writes ``BENCH_fig12_smoke.json``; a smoke run that
    explicitly names ``BENCH_fig12.json`` is refused unless forced.
    """
    if out is None:
        return "BENCH_fig12_smoke.json" if smoke else "BENCH_fig12.json"
    if smoke and Path(out).name == "BENCH_fig12.json" and not force:
        raise SystemExit(
            "refusing to overwrite the committed BENCH_fig12.json with a "
            "--smoke run; pick another --out or pass --force"
        )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fig. 12+ churn ablation -> BENCH_fig12.json"
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="trace scale (default 0.05 -> 4000 machines "
                             "under the default pool factor)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ticks", type=int, default=60)
    parser.add_argument("--pool-factor", type=float, default=8.0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-time repetitions per variant (best-of)")
    parser.add_argument("--workers", type=int, default=4,
                        help="shard workers for the parallel variant row "
                             "(1 disables the row; default 4)")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_fig12.json, or "
                             "BENCH_fig12_smoke.json under --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: tiny scale, one repetition, "
                             "no ratio assertion")
    parser.add_argument("--force", action="store_true",
                        help="allow a --smoke run to overwrite "
                             "BENCH_fig12.json")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale, args.ticks, args.repeats = 0.02, 20, 1
    out = resolve_out(args.out, args.smoke, args.force)

    report = run_report(
        args.scale, args.seed, args.ticks, args.pool_factor, args.repeats,
        workers=args.workers,
    )
    Path(out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
