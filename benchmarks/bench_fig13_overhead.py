"""Fig. 13 — algorithm overhead and migration cost vs cluster size.

(a) total scheduling time of Aladdin+IL+DL as the cluster grows, under
    the four arrival characteristics (paper: linear growth; CLA ~30 %
    cheaper than the worst case CSA);
(b) migration + preemption counts (paper: CSA worst at ~1,700 of 100k
    containers = 1.7 %; the other orders below it).
"""

import pytest

from repro import AladdinScheduler, ArrivalOrder, Simulator
from repro.report import format_series

from benchmarks.conftest import once

ORDERS = [ArrivalOrder.CHP, ArrivalOrder.CLP, ArrivalOrder.CLA, ArrivalOrder.CSA]

_overhead: dict[str, list[tuple[int, float]]] = {}
_migrations: dict[str, int] = {}


def cluster_sizes(trace):
    n = trace.config.n_machines
    return [n, 2 * n, 4 * n]


@pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
def test_fig13a_overhead_scaling(benchmark, order, trace, capsys):
    def sweep():
        series = []
        for n in cluster_sizes(trace):
            result = Simulator(trace, n_machines=n).run(AladdinScheduler(), order)
            series.append((n, result.metrics.latency_total_s))
        return series

    series = once(benchmark, sweep)
    _overhead[order.value] = series
    with capsys.disabled():
        print("\n" + format_series(
            f"Fig. 13(a) [{order.value}]: total overhead", series, unit=" s"
        ))
    # Super-linear blowups would break the paper's linear-growth claim:
    # 4x machines must cost well under 16x time.
    t_1x, t_4x = series[0][1], series[-1][1]
    assert t_4x <= 16 * max(t_1x, 1e-3)


def test_fig13b_migration_cost(trace, pressured_sim, benchmark, capsys):
    """Migrations stay a small fraction of the workload (paper: <= 1.7 %
    of 100k containers, worst under CSA).

    Rescheduling only triggers under packing pressure, so this runs at
    the Fig. 9 cluster sizing (~92 % demand) rather than the Fig. 13(a)
    scaling sweep, where larger clusters make migrations vanish.
    """

    def collect():
        for order in ORDERS:
            result = pressured_sim.run(AladdinScheduler(), order)
            assert result.metrics.violation_pct <= 0.5
            _migrations[order.value] = (
                result.metrics.migrations + result.metrics.preemptions
            )
        return dict(_migrations)

    counts = once(benchmark, collect)
    with capsys.disabled():
        print("\n" + format_series(
            "Fig. 13(b): migrations + preemptions per order",
            sorted(counts.items()),
        ))
    # The paper's magnitude claim: rescheduling touches only a small
    # fraction of the workload (1.7 % at full scale).  Which order pays
    # the most depends on the interference structure of the trace: in
    # the paper's CSA is worst; in the synthetic trace the constrained
    # mass segregates cleanly when placed either first or last, and the
    # migrations shift to orders that pack unconstrained giants late
    # (documented as a deviation in EXPERIMENTS.md).
    for order, count in counts.items():
        assert count <= 0.05 * trace.n_containers, order
