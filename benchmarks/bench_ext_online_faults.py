"""Extension benchmarks: online churn, fault recovery, heterogeneity.

Beyond the paper's figures, these exercise the extensions DESIGN.md §5
and Section VII motivate: steady-state churn (LLAs live "hours to
months" and depart), machine-failure recovery (the reliability story
behind within-app anti-affinity), and heterogeneous machine shapes (the
paper's stated future work).
"""

from repro import (
    AladdinScheduler,
    ClusterState,
    GoKubeScheduler,
    MachineSpec,
    build_heterogeneous_cluster,
)
from repro.report import format_series
from repro.sim.faults import fail_machines, random_failures, recover
from repro.sim.online import OnlineConfig, OnlineSimulator
from repro.trace.arrival import order_containers, ArrivalOrder

from benchmarks.conftest import once


def test_ext_online_churn(benchmark, trace, capsys):
    """Steady-state arrivals and departures; Aladdin must stay clean
    throughout the full lifecycle."""

    def run():
        sim = OnlineSimulator(trace, OnlineConfig(ticks=40))
        return sim.run(AladdinScheduler())

    result = once(benchmark, run)
    step = max(1, len(result.samples) // 12)
    with capsys.disabled():
        print("\n" + format_series(
            "ext[online]: running containers over time",
            result.series("running_containers")[::step],
        ))
        print(f"ext[online]: failure rate {result.failure_rate:.2%}, "
              f"peak machines {result.peak_used_machines}, "
              f"migrations {result.total_migrations}")
    assert result.total_arrived == trace.n_containers
    assert result.failure_rate <= 0.02
    assert all(s.violations == 0 for s in result.samples)


def test_ext_fault_recovery(benchmark, trace, capsys):
    """Kill 5 % of used machines after a full replay; recovery re-places
    the displaced containers without violations."""
    import numpy as np
    from repro.sim import Simulator

    def run():
        sim = Simulator(trace, machine_pool_factor=1.3)
        replay = sim.run(AladdinScheduler())
        state = replay.state
        victims = random_failures(
            state, max(1, state.used_machines() // 20),
            rng=np.random.default_rng(1),
        )
        report = fail_machines(state, victims)
        recover(report, state, AladdinScheduler())
        return report, state

    report, state = once(benchmark, run)
    with capsys.disabled():
        print(f"\next[faults]: {len(report.failed_machines)} machines down, "
              f"{report.n_displaced} containers displaced, "
              f"{report.recovered} recovered, {report.lost} lost "
              f"({report.recovery_migrations} migrations, "
              f"{report.recovery_s * 1e3:.0f} ms)")
    assert report.recovered >= 0.9 * report.n_displaced
    assert state.anti_affinity_violations() == 0


def test_ext_heterogeneous_cluster(benchmark, trace, capsys):
    """The Section VII extension: the same trace on a mixed cluster of
    standard and double-size machines."""
    total_cpu = sum(a.cpu * a.n_containers for a in trace.applications)
    n_small = round(total_cpu / 32 * 0.6 / 0.9)
    n_big = round(total_cpu / 64 * 0.4 / 0.9)

    def run():
        topo = build_heterogeneous_cluster([
            (n_small, MachineSpec(cpu=32, mem_gb=64)),
            (n_big, MachineSpec(cpu=64, mem_gb=128)),
        ])
        out = {}
        for sched in (AladdinScheduler(), GoKubeScheduler()):
            state = ClusterState(topo, trace.constraints)
            containers = order_containers(trace, ArrivalOrder.TRACE)
            result = sched.schedule(containers, state)
            out[sched.name] = (result, state)
        return out

    results = once(benchmark, run)
    with capsys.disabled():
        for name, (result, state) in results.items():
            print(f"\next[hetero] {name}: undeployed {result.n_undeployed}, "
                  f"violations {state.anti_affinity_violations()}, "
                  f"used {state.used_machines()}/{state.n_machines}")
    aladdin = results["Aladdin(16)+IL+DL"][0]
    kube = results["Go-Kube"][0]
    assert aladdin.n_undeployed <= kube.n_undeployed
    assert results["Aladdin(16)+IL+DL"][1].anti_affinity_violations() == 0
