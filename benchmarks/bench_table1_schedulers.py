"""Table I — the state-of-the-art schedulers used in the experiments.

Regenerates the table from the scheduler registry and times one
trace replay per comparator as a smoke-level cost baseline.
"""

import pytest

from repro.baselines import SCHEDULERS
from repro.report import format_table

from benchmarks.conftest import once


def test_table1_registry_rows(benchmark, capsys):
    """The registry reproduces Table I's name/description rows."""

    def build():
        return format_table(
            ["Name", "Description"],
            [[name, desc] for name, (_, desc) in SCHEDULERS.items()],
            title="Table I: the state-of-the-art schedulers",
        )

    table = once(benchmark, build)
    with capsys.disabled():
        print("\n" + table)
    assert "Firmament-QUINCY" in table
    assert "Medea" in table and "Go-Kube" in table
    assert len(SCHEDULERS) == 5


@pytest.mark.parametrize("name", list(SCHEDULERS))
def test_table1_scheduler_replay(benchmark, name, pressured_sim):
    """One full trace replay per Table-I scheduler (cost baseline)."""
    factory, _ = SCHEDULERS[name]

    result = once(benchmark, lambda: pressured_sim.run(factory()))
    benchmark.extra_info["violation_pct"] = round(
        result.metrics.violation_pct, 2
    )
    assert result.metrics.n_total == pressured_sim.trace.n_containers
