"""Solver-engine window placement benchmark -> ``BENCH_solver.json``.

Replays the calibrated trace as an *offline window placement* stream —
containers arrive in submission order and are handed to the engine in
fixed-size windows — through the three placement engines:

* ``batch``  — :class:`repro.core.AladdinScheduler`, the incremental
  greedy walk with the vectorized block kernel (the production default);
* ``spfa``   — :class:`repro.core.FlowPathSearch`, the Section IV
  optimised maximum-flow search (SPFA augmentation);
* ``solver`` — :class:`repro.core.vecsolve.SolverScheduler`, the
  one-shot LP that models the whole window jointly
  (``scipy.optimize.linprog``, needs the ``solver`` extra).

Each (cluster scale, window size) cell reports best-of-``repeats`` wall
time, the Fig. 9 quality sample (used machines / fragmentation /
blocked), the solver telemetry proving the LP actually drove the
placements, and an Equation 7–9 :func:`~repro.core.validate.validate_state`
audit of the final cluster — the run aborts if any engine ends a cell
invalid, so a committed report certifies 100% validity.

The committed full measurement covers the 4,000-machine (scale 0.05 x
pool 8.0) and 12,000-machine (scale 0.15 x pool 8.0) clusters at two
window sizes; one extra row per scale exercises the solver's two-phase
``maxmin`` objective.  Ratios are written per cell (``solver_over_spfa``,
``solver_over_batch``) — the analysis of where the LP wins and where it
pays lives in EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from repro import AladdinConfig, generate_trace
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core import engine_for, measure_quality, validate_state
from repro.telemetry import SchedulerTelemetry

#: the engine axis every cell compares
ENGINES: dict[str, AladdinConfig] = {
    "batch": AladdinConfig(),
    "spfa": AladdinConfig(engine="flow"),
    "solver": AladdinConfig(engine="solver"),
}


def replay_windows(trace, n_machines: int, cfg: AladdinConfig, window: int) -> dict:
    """One offline window-placement replay of ``trace`` on a fresh cluster."""
    state = ClusterState(build_cluster(n_machines), trace.constraints)
    engine = engine_for(cfg)
    containers = list(trace.containers)
    telemetry = SchedulerTelemetry()
    placed = 0
    t0 = time.perf_counter()
    try:
        for i in range(0, len(containers), window):
            result = engine.schedule(containers[i : i + window], state)
            placed += result.n_deployed
            if result.telemetry is not None:
                telemetry.merge(result.telemetry)
    finally:
        close = getattr(engine, "close", None)
        if callable(close):
            close()
    elapsed = time.perf_counter() - t0
    quality = measure_quality(state, blocked=len(containers) - placed)
    audit = validate_state(state)
    return {
        "wall_time_ms": round(elapsed * 1000, 1),
        "placed": placed,
        "blocked": quality.blocked,
        "used_machines": quality.used_machines,
        "fragmentation": round(quality.fragmentation, 4),
        "solver_calls": telemetry.solver_calls,
        "solver_rounding_repairs": telemetry.solver_rounding_repairs,
        "solver_relaxation_gap": round(telemetry.solver_relaxation_gap, 2),
        "eq7_9_valid": audit.ok,
    }


def measure(trace, n_machines, cfg, window, repeats) -> dict:
    """Best-of-``repeats`` replay; decision fields must not wobble."""
    best = None
    for _ in range(repeats):
        run = replay_windows(trace, n_machines, cfg, window)
        if best is not None:
            for key in ("placed", "used_machines", "solver_calls"):
                assert run[key] == best[key], f"nondeterministic {key}"
        if best is None or run["wall_time_ms"] < best["wall_time_ms"]:
            best = run
    return best


def run_solver_report(
    seed: int,
    scales: tuple[float, ...],
    window_sizes: tuple[int, ...],
    pool_factor: float,
    repeats: int,
) -> dict:
    report: dict = {
        "figure": "Solver engine (one-shot LP window placement vs SPFA/batch)",
        "setup": {
            "seed": seed,
            "scales": list(scales),
            "window_sizes": list(window_sizes),
            "machine_pool_factor": pool_factor,
            "repeats": repeats,
        },
        "scales": {},
    }
    for scale in scales:
        trace = generate_trace(scale=scale, seed=seed)
        n_machines = max(1, round(trace.config.n_machines * pool_factor))
        entry: dict = {
            "n_machines": n_machines,
            "n_containers": trace.n_containers,
            "windows": {},
        }
        for window in window_sizes:
            cell: dict = {"engines": {}}
            for name, cfg in ENGINES.items():
                row = measure(trace, n_machines, cfg, window, repeats)
                cell["engines"][name] = row
                print(
                    f"{n_machines:>6} machines, window {window:>4}, "
                    f"{name:>6}: {row['wall_time_ms']:9.1f} ms, "
                    f"{row['placed']} placed, "
                    f"{row['used_machines']} used, valid={row['eq7_9_valid']}"
                )
                if not row["eq7_9_valid"]:
                    raise SystemExit(
                        f"{name} ended Eq. 7-9 invalid at scale {scale}, "
                        f"window {window}"
                    )
            solver = cell["engines"]["solver"]["wall_time_ms"]
            for rival in ("spfa", "batch"):
                base = cell["engines"][rival]["wall_time_ms"]
                cell[f"solver_over_{rival}"] = (
                    round(solver / base, 3) if base else None
                )
            print(
                f"      solver/spfa {cell['solver_over_spfa']}, "
                f"solver/batch {cell['solver_over_batch']}"
            )
            entry["windows"][str(window)] = cell
        # The two-phase max-min objective: fairness reshapes placement,
        # so it is validity- and liveness-checked, not ratio-gated.
        maxmin = measure(
            trace,
            n_machines,
            AladdinConfig(engine="solver", solver_objective="maxmin"),
            window_sizes[0],
            repeats,
        )
        if not maxmin["eq7_9_valid"]:
            raise SystemExit(f"maxmin solver ended invalid at scale {scale}")
        entry["solver_maxmin"] = maxmin
        print(
            f"{n_machines:>6} machines, maxmin solver: "
            f"{maxmin['wall_time_ms']:9.1f} ms, {maxmin['placed']} placed, "
            f"{maxmin['solver_calls']} LP calls"
        )
        report["scales"][str(scale)] = entry
    report["all_valid"] = True  # every cell above aborted otherwise
    return report
