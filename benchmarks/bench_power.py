"""Power-lifecycle sweep: machine-hours and cold starts per keep-alive
policy.

Runs the ``diurnal`` and ``churn-storm`` scenario families with the
autoscaling lifecycle on, across every keep-alive policy (``fixed`` /
``ttl`` / ``lru`` / ``none``) plus an always-on baseline (lifecycle
off), and commits the result as ``BENCH_power.json`` — the Fig. 10
used-machines curve integrated into an energy/cost dimension.  Three
claims are asserted, not just reported:

* **decision parity** — the engine optimisation axes stay semantically
  transparent under lifecycle churn: per scenario, the full engine and
  its no-cache ablation must make identical decisions (placements,
  power transitions and pool telemetry included);
* **autoscale beats always-on** — every lifecycle row powers strictly
  fewer machine-ticks than the always-on baseline at no extra
  placement failures;
* **keep-alive pays** — on ``diurnal``, the ``fixed`` pool beats
  ``none`` (no pool, every function placement cold-starts) on both
  machine-ticks and cold-start rate.
"""

from __future__ import annotations

from repro import AladdinConfig, AladdinScheduler
from repro.sim import OnlineConfig, OnlineSimulator, power_metrics
from repro.trace import build_scenario

#: keep-alive policies swept per scenario ("none" = pool disabled)
POWER_POLICIES = ("fixed", "ttl", "lru", "none")

#: scenario families measured (high-churn, pool-friendly workloads)
POWER_SCENARIOS = ("diurnal", "churn-storm")


def power_signature(result) -> tuple:
    """Decision signature with the lifecycle axes folded in."""
    return (
        result.total_arrived,
        result.total_departed,
        result.total_failed,
        result.total_migrations,
        tuple(
            (
                s.tick,
                s.arrived_containers,
                s.departed_containers,
                s.running_containers,
                s.pending_failures,
                s.used_machines,
                s.migrations,
                s.violations,
                s.powered_machines,
                s.draining_machines,
                s.off_machines,
                s.warm_hits,
                s.cold_starts,
                s.pool_size,
            )
            for s in result.samples
        ),
    )


def _policy_row(result, n_machines: int) -> dict:
    pm = power_metrics(result, n_machines)
    return {
        "wall_time_ms": round(result.total_elapsed_s * 1000, 2),
        "arrived": result.total_arrived,
        "departed": result.total_departed,
        "failed": result.total_failed,
        "machine_ticks": pm.machine_ticks,
        "always_on_machine_ticks": pm.always_on_machine_ticks,
        "savings_pct": round(pm.savings_pct, 2),
        "peak_powered": pm.peak_powered,
        "warm_hits": pm.warm_hits,
        "cold_starts": pm.cold_starts,
        "cold_start_rate": round(pm.cold_start_rate, 4),
    }


def run_power_report(
    scale: float,
    seed: int,
    ticks: int,
    repeats: int,
    n_functions: int = 160,
    scenarios: tuple[str, ...] = POWER_SCENARIOS,
    pool_factor: float = 2.5,
) -> dict:
    """Sweep scenarios × keep-alive policies; assert the three claims.

    ``pool_factor`` provisions the machine pool for peak concurrency
    *plus* cold-start lifetime inflation (a cold-started function
    occupies its slot ``cold_start_ticks`` longer, so function
    concurrency under the lifecycle runs well past the scenario's
    calibrated peak).  The surplus is exactly what the lifecycle powers
    down — and what the always-on baseline, measured over the same
    pool, pays for in full.
    """
    report: dict = {
        "figure": "Power lifecycle (machine-hours vs keep-alive policy)",
        "setup": {
            "scale": scale,
            "seed": seed,
            "ticks": ticks,
            "repeats": repeats,
            "n_functions": n_functions,
            "dataset": f"synthetic-fallback:seed={seed}",
            "scenarios": list(scenarios),
            "policies": list(POWER_POLICIES),
            "pool_factor": pool_factor,
        },
        "scenarios": {},
    }

    for name in scenarios:
        trace = build_scenario(
            name, scale=scale, seed=seed, ticks=ticks,
            n_functions=n_functions,
        )
        rows: dict[str, dict] = {}
        for policy in POWER_POLICIES:
            cfg = OnlineConfig(
                seed=seed, scenario=name, autoscale=True,
                keep_alive=policy, machine_pool_factor=pool_factor,
            )
            sim = OnlineSimulator(trace, cfg)
            best = min(
                (sim.run(AladdinScheduler()) for _ in range(repeats)),
                key=lambda r: r.total_elapsed_s,
            )
            rows[policy] = _policy_row(best, sim._topology.n_machines)
            if policy == "fixed":
                # Decision-parity probe: the no-cache ablation must
                # replay the lifecycle run decision-for-decision.
                ablated = OnlineSimulator(trace, cfg).run(
                    AladdinScheduler(
                        AladdinConfig(enable_feasibility_cache=False)
                    )
                )
                if power_signature(ablated) != power_signature(best):
                    raise SystemExit(
                        f"scenario {name}: no-cache engine diverged from "
                        "the full engine under the lifecycle — the "
                        "optimisation axes must stay transparent"
                    )
        # Always-on baseline: same workload and pool, lifecycle off.
        base_cfg = OnlineConfig(
            seed=seed, scenario=name, machine_pool_factor=pool_factor
        )
        base_sim = OnlineSimulator(trace, base_cfg)
        base = min(
            (base_sim.run(AladdinScheduler()) for _ in range(repeats)),
            key=lambda r: r.total_elapsed_s,
        )
        rows["always-on"] = _policy_row(base, base_sim._topology.n_machines)

        for policy, row in rows.items():
            print(
                f"{name:>12} / {policy:<9}: {row['machine_ticks']:>8} "
                f"machine-ticks ({row['savings_pct']:5.1f}% saved), "
                f"cold-start rate {row['cold_start_rate']:.1%}, "
                f"failed {row['failed']}"
            )

        always = rows["always-on"]["machine_ticks"]
        for policy in POWER_POLICIES:
            if rows[policy]["machine_ticks"] >= always:
                raise SystemExit(
                    f"scenario {name}: keep-alive {policy} powered "
                    f"{rows[policy]['machine_ticks']} machine-ticks, not "
                    f"fewer than always-on ({always})"
                )
            if rows[policy]["failed"] > rows["always-on"]["failed"]:
                raise SystemExit(
                    f"scenario {name}: keep-alive {policy} failed "
                    f"{rows[policy]['failed']} placements vs always-on "
                    f"{rows['always-on']['failed']} — power-down must not "
                    "cost validity"
                )
        report["scenarios"][name] = {
            "n_apps": trace.n_apps,
            "n_containers": trace.n_containers,
            "n_machines": trace.config.n_machines,
            "decisions_identical": True,
            "policies": rows,
        }

    diurnal = report["scenarios"].get("diurnal")
    if diurnal:
        fixed = diurnal["policies"]["fixed"]
        none = diurnal["policies"]["none"]
        if fixed["machine_ticks"] > none["machine_ticks"]:
            raise SystemExit(
                "diurnal: the fixed keep-alive pool powered "
                f"{fixed['machine_ticks']} machine-ticks vs "
                f"{none['machine_ticks']} without a pool — keep-alive "
                "must pay for itself"
            )
        if fixed["cold_start_rate"] >= none["cold_start_rate"]:
            raise SystemExit(
                "diurnal: the pool did not reduce the cold-start rate"
            )
        print(
            f"     diurnal fixed vs none: {fixed['machine_ticks']} vs "
            f"{none['machine_ticks']} machine-ticks, cold-start rate "
            f"{fixed['cold_start_rate']:.1%} vs "
            f"{none['cold_start_rate']:.1%}"
        )
    return report
