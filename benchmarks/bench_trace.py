"""Azure-trace scenario sweep: the serverless workload ablation.

Runs every scenario family of :mod:`repro.trace.scenarios` — built on
the seeded synthetic fallback, so the benchmark needs nothing on disk —
through the Aladdin optimisation axes (full stack, no cross-round
cache, no batch kernel, sharded workers) and commits the result as
``BENCH_trace.json``.  Two claims are asserted, not just reported:

* **decision parity** — the cache/batch/workers axes are semantically
  transparent, so every variant's decision signature (per-tick
  arrived/departed/running/used-machines/failures/migrations/violations
  plus the run totals) must be identical per scenario;
* **the churn-storm story** — the report carries an ``lla-only`` row
  (the synthetic Alibaba-style workload at the same scale) so the
  committed numbers show what orders-of-magnitude-higher churn does to
  the feasibility cache's hit rate (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro import AladdinConfig, AladdinScheduler, generate_trace
from repro.sim import OnlineConfig, OnlineSimulator
from repro.trace import SCENARIOS, build_scenario

#: optimisation axes swept per scenario
TRACE_VARIANTS: dict[str, AladdinConfig] = {
    "full": AladdinConfig(),
    "no-cache": AladdinConfig(enable_feasibility_cache=False),
    "no-batch": AladdinConfig(enable_batch_kernel=False),
    "workers2": AladdinConfig(workers=2),
}


def decision_signature(result) -> tuple:
    """Everything a semantically-transparent optimisation must preserve."""
    return (
        result.total_arrived,
        result.total_departed,
        result.total_failed,
        result.total_migrations,
        tuple(
            (
                s.tick,
                s.arrived_containers,
                s.departed_containers,
                s.running_containers,
                s.pending_failures,
                s.used_machines,
                s.migrations,
                s.violations,
            )
            for s in result.samples
        ),
    )


def _measure_interleaved(
    trace, cfg: OnlineConfig, variants: dict[str, AladdinConfig], repeats: int
) -> dict[str, dict]:
    """Best-of-``repeats`` rows for every variant, repeats interleaved.

    Round-robin across the variants (run 1 of each, then run 2 of
    each, …) rather than back-to-back per variant: on a contended host
    a load burst then degrades every variant's round about equally
    instead of landing entirely on whichever variant was being timed,
    so best-of-N ratios between variants converge much faster.
    """
    sims = {name: OnlineSimulator(trace, cfg) for name in variants}
    runs: dict[str, list] = {name: [] for name in variants}
    for _ in range(repeats):
        for name, variant in variants.items():
            runs[name].append(sims[name].run(AladdinScheduler(variant)))
    return {
        name: _row(min(results, key=lambda r: r.total_elapsed_s))
        for name, results in runs.items()
    }


def _row(best) -> dict:
    tele = best.telemetry
    busy_ticks = sum(1 for s in best.samples if s.arrived_containers)
    return {
        "wall_time_ms": round(best.total_elapsed_s * 1000, 2),
        "arrived": best.total_arrived,
        "departed": best.total_departed,
        "failed": best.total_failed,
        "migrations": best.total_migrations,
        "peak_used_machines": best.peak_used_machines,
        "busy_ticks": busy_ticks,
        "churn_per_busy_tick": (
            round((best.total_arrived + best.total_departed) / busy_ticks, 1)
            if busy_ticks else 0.0
        ),
        "machines_examined": sum(s.explored for s in best.samples),
        "cache_hits": tele.cache_hits,
        "cache_misses": tele.cache_misses,
        "cache_hit_rate": round(tele.cache_hit_rate, 4),
        "batch_kernel_invocations": tele.batch_kernel_invocations,
        "parallel_sweeps": tele.parallel_sweeps,
        # Wall seconds per tick phase (window apply + scheduler phases),
        # from the same best-of-repeats run as wall_time_ms.
        "phase_time_s": {
            name: round(dt, 4)
            for name, dt in sorted(tele.phase_time_s.items())
        },
        "_signature": decision_signature(best),
    }


def run_trace_report(
    scale: float,
    seed: int,
    ticks: int,
    repeats: int,
    scenarios: tuple[str, ...] = (),
    variants: tuple[str, ...] = (),
    n_functions: int = 160,
) -> dict:
    """Sweep scenarios × optimisation axes; assert per-scenario parity."""
    scenario_names = list(scenarios) or sorted(SCENARIOS)
    variant_names = list(variants) or list(TRACE_VARIANTS)
    report: dict = {
        "figure": "Azure-trace scenarios (serverless churn ablation)",
        "setup": {
            "scale": scale,
            "seed": seed,
            "ticks": ticks,
            "repeats": repeats,
            "n_functions": n_functions,
            "dataset": f"synthetic-fallback:seed={seed}",
            "scenarios": scenario_names,
            "variants": variant_names,
        },
        "scenarios": {},
    }

    workloads: dict[str, tuple] = {}
    for name in scenario_names:
        trace = build_scenario(
            name, scale=scale, seed=seed, ticks=ticks, n_functions=n_functions
        )
        cfg = OnlineConfig(seed=seed, scenario=name)
        workloads[name] = (trace, cfg)
    # The LLA-only baseline: the synthetic Alibaba-style generator at
    # the same scale, which is what every pre-trace benchmark measured.
    lla_trace = generate_trace(scale=scale, seed=seed)
    workloads["lla-only"] = (
        lla_trace,
        OnlineConfig(ticks=ticks, seed=seed),
    )

    for name, (trace, cfg) in workloads.items():
        rows = _measure_interleaved(
            trace, cfg,
            {v: TRACE_VARIANTS[v] for v in variant_names},
            repeats,
        )
        for vname in variant_names:
            r = rows[vname]
            print(
                f"{name:>12} / {vname:<9}: {r['wall_time_ms']:8.1f} ms, "
                f"arrived {r['arrived']:>6}, churn/tick "
                f"{r['churn_per_busy_tick']:>7}, cache "
                f"{r['cache_hit_rate']:.1%}"
            )
        signatures = {v: rows[v].pop("_signature") for v in rows}
        baseline = signatures[variant_names[0]]
        diverged = [v for v, sig in signatures.items() if sig != baseline]
        if diverged:
            raise SystemExit(
                f"scenario {name}: variants {diverged} diverged from "
                f"{variant_names[0]} — the optimisation axes must be "
                "semantically transparent"
            )
        report["scenarios"][name] = {
            "n_apps": trace.n_apps,
            "n_containers": trace.n_containers,
            "n_machines": trace.config.n_machines,
            "decisions_identical": True,
            "variants": rows,
        }
        if "full" in rows and "no-cache" in rows:
            # The churn-fast-path regression signal: > 1.00 means the
            # cross-round cache costs more than the scans it saves on
            # this scenario (see EXPERIMENTS.md, churn fast path).
            denom = rows["no-cache"]["wall_time_ms"]
            ratio = rows["full"]["wall_time_ms"] / denom if denom else 0.0
            report["scenarios"][name]["full_vs_no_cache_ratio"] = round(
                ratio, 4
            )
            print(
                f"{name:>12} full/no-cache wall ratio: {ratio:.2f}"
                " (<= 1.00: the cache pays for itself)"
            )

    storm = report["scenarios"].get("churn-storm")
    lla = report["scenarios"].get("lla-only")
    if storm and lla:
        report["churn_storm_vs_lla_only"] = {
            "churn_per_busy_tick": [
                storm["variants"]["full"]["churn_per_busy_tick"],
                lla["variants"]["full"]["churn_per_busy_tick"],
            ],
            "cache_hit_rate": [
                storm["variants"]["full"]["cache_hit_rate"],
                lla["variants"]["full"]["cache_hit_rate"],
            ],
        }
        print(
            "churn-storm vs lla-only: churn/tick "
            f"{report['churn_storm_vs_lla_only']['churn_per_busy_tick']}, "
            "cache hit rate "
            f"{report['churn_storm_vs_lla_only']['cache_hit_rate']}"
        )
    return report
