"""Serving-mode SLO benchmark → ``BENCH_serve.json``.

Stands up the real serving stack — :class:`repro.serve.PlacementServer`
on a background thread, closed-loop :mod:`repro.serve.loadgen` clients
over a unix socket — against a 10,000-machine pool (the 0.05-scale
trace under ``machine_pool_factor=20``) and commits the service-level
numbers the README quotes: sustained decided requests per second and
p50/p99 decision latency, at two operating points:

* ``steady`` — one closed-loop client, so every request sees an idle
  queue and the latency numbers are pure decision time (send →
  decision reply, one scheduling window each);
* ``saturated`` — ``--clients`` concurrent closed loops, enough
  pressure that windows coalesce and the admission queue works;
  clients honor ``retry_after``, so every batch is still decided.

Each operating point runs a short warmup (feasibility masks, caches,
the packed-first index all come up on the first windows) before the
measured interval, and asserts the admission ledger — requests admitted
plus rejected equals frames sent, warmup included — before its row
enters the report.

Run via the report driver (the output-path policy lives there)::

    PYTHONPATH=src python -m benchmarks.bench_report --mode serve          # full
    PYTHONPATH=src python -m benchmarks.bench_report --mode serve --smoke  # CI
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro import AladdinScheduler, generate_trace
from repro.cluster.state import ClusterState
from repro.serve import PlacementServer, ServeConfig, ServerThread, run_load
from repro.sim.online import OnlineConfig, pool_topology


def measure_serve(
    trace,
    topology,
    *,
    clients: int,
    duration_s: float,
    batch_size: int,
    warmup_s: float = 1.0,
    config: ServeConfig | None = None,
) -> dict:
    """One operating point: fresh server, warmup, measured closed loop.

    Returns the measured interval's :meth:`LoadResult.summary` plus the
    serving-loop counters (windows committed, coalescing, queue depth)
    for that interval.  Raises if the admission ledger does not balance
    or any client hit a connection error.
    """
    server = PlacementServer(
        AladdinScheduler(),
        ClusterState(topology, trace.constraints),
        config,
    )
    sock_dir = tempfile.mkdtemp(prefix="aldsrv", dir="/tmp")
    sock = os.path.join(sock_dir, "s.sock")
    try:
        with ServerThread(server, sock):
            # disjoint id partition: the warmup's final batches stay
            # resident, so the measured loop must not reuse their ids
            warm = run_load(
                sock, clients=clients, duration_s=warmup_s,
                batch_size=batch_size, worker_offset=clients,
            )
            tele = server.telemetry
            windows_before = tele.windows_committed
            requests_before = tele.window_requests
            result = run_load(
                sock, clients=clients, duration_s=duration_s,
                batch_size=batch_size,
            )
    finally:
        shutil.rmtree(sock_dir, ignore_errors=True)

    sent = warm.sent + result.sent
    if tele.requests_admitted + tele.requests_rejected != sent:
        raise SystemExit(
            f"admission ledger broken: {tele.requests_admitted} admitted "
            f"+ {tele.requests_rejected} rejected != {sent} sent"
        )
    if result.errors or not result.decided:
        raise SystemExit(
            f"unhealthy run: {result.errors} connection errors, "
            f"{result.decided} decisions"
        )
    windows = tele.windows_committed - windows_before
    window_requests = tele.window_requests - requests_before
    row = result.summary()
    row.update(
        clients=clients,
        windows_committed=windows,
        mean_window_size=round(window_requests / windows, 2) if windows else 0.0,
        peak_queue_depth=tele.peak_queue_depth,
        ledger_balanced=True,
    )
    return row


def run_serve_report(
    scale: float,
    seed: int,
    pool_factor: float,
    duration_s: float,
    clients: int,
    batch_size: int,
) -> dict:
    """The committed serve measurement: steady + saturated SLO rows."""
    trace = generate_trace(scale=scale, seed=seed)
    topology = pool_topology(trace, OnlineConfig(machine_pool_factor=pool_factor))
    report: dict = {
        "figure": "Serving SLO (async placement service, closed-loop load)",
        "setup": {
            "scale": scale,
            "seed": seed,
            "machine_pool_factor": pool_factor,
            "n_machines": topology.n_machines,
            "batch_size": batch_size,
            "duration_s": duration_s,
        },
        "operating_points": {},
    }
    for name, n_clients in (("steady", 1), ("saturated", clients)):
        row = measure_serve(
            trace, topology,
            clients=n_clients, duration_s=duration_s, batch_size=batch_size,
        )
        report["operating_points"][name] = row
        print(
            f"{name:>10}: {row['throughput_rps']:8.1f} req/s sustained, "
            f"p50 {row['latency_ms']['p50']:7.2f} ms, "
            f"p99 {row['latency_ms']['p99']:7.2f} ms "
            f"({n_clients} clients, {row['windows_committed']} windows, "
            f"mean window {row['mean_window_size']})"
        )
    return report
