"""Fig. 10 — machines used under the four arrival characteristics.

The efficiency experiment: ``num(scheduler)`` is the smallest cluster on
which the scheduler deploys the *whole* trace cleanly (no undeployed
containers, no violations) — the quantity behind the paper's "Go-Kube
needs 14,211 machines in the worst-case scenario, which is 1.54 times
more than Aladdin".  Measured by binary search over the cluster size
per (scheduler, arrival order) pair.

Paper references (machines used, full scale):
  Aladdin 9,242 for every order | Medea ~10,262 | Firmament-QUINCY
  ~10,477 | Go-Kube 12,157-14,211 (wide-ranging, order-dependent).
"""

import pytest

from repro import (
    AladdinScheduler,
    ArrivalOrder,
    FirmamentPolicy,
    FirmamentScheduler,
    GoKubeScheduler,
    MedeaScheduler,
    MedeaWeights,
    minimum_cluster_size,
)
from repro.report import format_table

from benchmarks.conftest import once

ORDERS = [ArrivalOrder.CHP, ArrivalOrder.CLP, ArrivalOrder.CLA, ArrivalOrder.CSA]

#: Fig. 10's line-up with knobs "set optimally" per Section V.C.
COMPARATORS = {
    "Go-Kube": lambda: GoKubeScheduler(),
    "Firmament-QUINCY(8)": lambda: FirmamentScheduler(
        FirmamentPolicy.QUINCY, reschd=8
    ),
    "Medea(1,1,0)": lambda: MedeaScheduler(MedeaWeights(1, 1, 0)),
    "Aladdin(16)": lambda: AladdinScheduler(),
}

_sizes: dict[str, dict[str, int]] = {}


def _size(trace, name, order):
    per_order = _sizes.setdefault(name, {})
    if order.value not in per_order:
        per_order[order.value] = minimum_cluster_size(
            trace, COMPARATORS[name], order
        )
    return per_order[order.value]


@pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
def test_fig10_used_machines(benchmark, order, trace, capsys):
    def run_order():
        return {name: _size(trace, name, order) for name in COMPARATORS}

    sizes = once(benchmark, run_order)
    with capsys.disabled():
        print("\n" + format_table(
            ["scheduler", "machines used"],
            [[n, s] for n, s in sizes.items()],
            title=f"Fig. 10 [{order.value}]",
        ))
    aladdin = sizes["Aladdin(16)"]
    # Aladdin uses the fewest machines under every arrival order...
    assert aladdin == min(sizes.values())
    # ...and Go-Kube burns far more (paper: +32 % to +54 %).
    assert sizes["Go-Kube"] / aladdin - 1 >= 0.3


def test_fig10_aladdin_robust_go_kube_wide(trace, benchmark, capsys):
    """Aladdin's flow model gives the same machine count (±5 %) for all
    four orders; Go-Kube's queue model is 'wide-ranging' (Section V.C)."""

    def spreads():
        out = {}
        for name in ("Aladdin(16)", "Go-Kube"):
            counts = [_size(trace, name, order) for order in ORDERS]
            out[name] = (max(counts) - min(counts)) / max(counts)
        return out

    result = once(benchmark, spreads)
    with capsys.disabled():
        print(
            f"\nFig. 10 spread across orders — Aladdin "
            f"{result['Aladdin(16)']:.1%} vs Go-Kube {result['Go-Kube']:.1%}"
        )
    assert result["Aladdin(16)"] <= 0.05
    assert result["Go-Kube"] > result["Aladdin(16)"]


def test_fig10_efficiency_headline(trace, benchmark, capsys):
    """Equation 10: the 'improves resource efficiency by 50 %' headline
    — Go-Kube's worst-case machine count is >= 1.5x Aladdin's."""

    def worst_ratio():
        aladdin = max(_size(trace, "Aladdin(16)", o) for o in ORDERS)
        kube = max(_size(trace, "Go-Kube", o) for o in ORDERS)
        return kube / aladdin

    ratio = once(benchmark, worst_ratio)
    with capsys.disabled():
        print(f"\nFig. 10: worst-case Go-Kube/Aladdin = {ratio:.2f}x (paper: 1.54x)")
    assert ratio >= 1.5
