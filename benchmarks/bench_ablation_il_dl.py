"""Ablations for the design choices DESIGN.md §5 calls out.

* IL / DL on-off grid: search work and latency, identical placements
  (Fig. 5's two prunings);
* migration / preemption on-off: placement quality effect (Section
  III.B's two mechanisms);
* priority weighting: Equation-5 weights vs flat weights — the flat
  variant admits priority inversions;
* network aggregation: edge count of the layered T→A→G→R→N form vs the
  direct O(|T|·|N|) bipartite form (Section III.A).
"""

import pytest

from repro import AladdinConfig, AladdinScheduler, Simulator
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_cluster
from repro.core.network_builder import (
    build_direct_network,
    build_layered_network,
)
from repro.report import format_table

from benchmarks.conftest import once

# The cross-round feasibility cache is held off so the grid isolates
# the paper's two prunings; the cache has its own ablation in
# bench_fig12_latency.py.
GRID = {
    "plain": AladdinConfig(enable_il=False, enable_dl=False),
    "+IL": AladdinConfig(enable_dl=False, enable_feasibility_cache=False),
    "+DL": AladdinConfig(enable_il=False),
    "+IL+DL": AladdinConfig(enable_feasibility_cache=False),
}


@pytest.mark.parametrize("variant", list(GRID))
def test_ablation_il_dl_grid(benchmark, variant, pressured_sim, capsys):
    cfg = GRID[variant]

    result = once(
        benchmark, lambda: pressured_sim.run(AladdinScheduler(cfg))
    )
    benchmark.extra_info["explored"] = result.schedule.explored
    with capsys.disabled():
        print(
            f"\nablation[{variant:7s}] explored={result.schedule.explored:>12,} "
            f"violations={result.metrics.violation_pct:.2f}%"
        )
    # The prunings are pure optimisations: quality must be unchanged.
    assert result.metrics.violation_pct <= 0.5


def test_ablation_prunings_preserve_placements(pressured_sim, benchmark):
    """All four grid corners produce identical placements."""

    def run_grid():
        return {
            name: pressured_sim.run(AladdinScheduler(cfg)).schedule.placements
            for name, cfg in GRID.items()
        }

    placements = once(benchmark, run_grid)
    baseline = placements["+IL+DL"]
    for name, p in placements.items():
        assert p == baseline, name


def test_ablation_rescue_mechanisms(pressured_sim, benchmark, capsys):
    """Disabling migration+preemption degrades placement quality."""

    def run_pair():
        full = pressured_sim.run(AladdinScheduler()).metrics
        bare_cfg = AladdinConfig(
            enable_migration=False, enable_preemption=False, final_repair=False
        )
        bare = pressured_sim.run(AladdinScheduler(bare_cfg)).metrics
        return full, bare

    full, bare = once(benchmark, run_pair)
    with capsys.disabled():
        print(
            f"\nablation[rescue]: violations with mechanisms "
            f"{full.violation_pct:.2f}% vs without {bare.violation_pct:.2f}%"
        )
    assert full.violation_pct <= bare.violation_pct


def test_ablation_priority_weights(pressured_sim, benchmark, capsys):
    """Flat weights (base=1 on a uniform-demand view) lose the
    Equation-5 guarantee only when demands differ across classes; the
    derived weights never produce inversions."""
    from repro.core.weights import derive_priority_weights, verify_no_inversion

    trace = pressured_sim.trace

    def check():
        derived = derive_priority_weights(trace.applications, base=16)
        flat = {p: 1.0 for p in derived}
        return (
            verify_no_inversion(derived, trace.applications),
            verify_no_inversion(flat, trace.applications),
        )

    derived_ok, flat_ok = once(benchmark, check)
    with capsys.disabled():
        print(
            f"\nablation[weights]: Equation-5 weights inversion-free: "
            f"{derived_ok}; flat weights inversion-free: {flat_ok}"
        )
    assert derived_ok
    assert not flat_ok


def test_ablation_network_aggregation(benchmark, trace, capsys):
    """Section III.A: layered aggregation cuts the edge count by orders
    of magnitude versus the direct bipartite network."""
    topo = build_cluster(trace.config.n_machines)
    state = ClusterState(topo, trace.constraints)
    window = trace.containers[:2000]

    def build_both():
        layered = build_layered_network(window, state)
        direct = build_direct_network(window, state)
        return layered.n_edges(), direct.n_edges()

    layered_edges, direct_edges = once(benchmark, build_both)
    with capsys.disabled():
        print("\n" + format_table(
            ["network form", "edges"],
            [
                ["layered s->T->A->G->R->N->t", f"{layered_edges:,}"],
                ["direct O(|T|*|N|)", f"{direct_edges:,}"],
                ["reduction", f"{direct_edges / layered_edges:.0f}x"],
            ],
            title="ablation[aggregation] (Section III.A)",
        ))
    assert layered_edges * 10 < direct_edges
