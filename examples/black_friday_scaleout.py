#!/usr/bin/env python
"""The 11.11 / Black Friday scale-out scenario from the paper's intro.

"When 11.11 e-commerce holiday or Black Friday is approaching, companies
will augment the capabilities of applications by about 100x by
scheduling massive LLAs in parallel" (Section II.A).

This example starts from a steady-state cluster, then submits a burst
that multiplies a latency-sensitive storefront application's replica
count, and compares how Aladdin and Go-Kube absorb the burst on the
same remaining headroom.

Run::

    python examples/black_friday_scaleout.py
"""

from repro import (
    AladdinScheduler,
    Application,
    ClusterState,
    ConstraintSet,
    GoKubeScheduler,
    build_cluster,
)
from repro.cluster.container import containers_of


def build_workloads():
    """A steady-state mix plus the 100x burst of storefront replicas."""
    steady = [
        # background batch-ish LLAs (noisy neighbours for the storefront)
        Application(app_id=0, n_containers=60, cpu=1.0, mem_gb=2.0,
                    conflicts=frozenset({3}), name="logging"),
        Application(app_id=1, n_containers=40, cpu=1.0, mem_gb=2.0,
                    conflicts=frozenset({3}), name="analytics"),
        Application(app_id=2, n_containers=10, cpu=4.0, mem_gb=8.0,
                    name="db"),
        # the storefront at pre-holiday size: 2 replicas
        Application(app_id=3, n_containers=2, cpu=8.0, mem_gb=16.0,
                    priority=2, anti_affinity_within=False,
                    conflicts=frozenset({0, 1}), name="storefront"),
    ]
    # The burst: storefront replicas go 2 -> 200 ("about 100x").
    burst = Application(
        app_id=4, n_containers=200, cpu=8.0, mem_gb=16.0, priority=2,
        conflicts=frozenset({0, 1}), name="storefront-burst",
    )
    return steady, burst


def run(scheduler_factory, label):
    steady, burst = build_workloads()
    all_apps = steady + [burst]
    topo = build_cluster(80)
    state = ClusterState(topo, ConstraintSet.from_applications(all_apps))
    scheduler = scheduler_factory()

    steady_containers = containers_of(steady)
    r1 = scheduler.schedule(steady_containers, state)
    burst_containers = containers_of([burst], start_id=len(steady_containers))
    burst_ids = {c.container_id for c in burst_containers}
    r2 = scheduler.schedule(burst_containers, state)

    burst_deployed = len(burst_ids & set(r2.placements))
    disrupted = sum(
        1 for cid in r1.placements if cid not in state.assignment
    )
    print(f"\n=== {label} ===")
    print(f"  steady state: {r1.n_deployed}/{r1.n_total} deployed on "
          f"{state.used_machines()} machines")
    print(f"  burst: {burst_deployed}/{len(burst_ids)} storefront replicas "
          f"deployed (migrations {r2.migrations}, "
          f"preemptions {r2.preemptions}, steady pods lost {disrupted})")
    print(f"  final: {state.used_machines()} machines used, "
          f"violations {state.anti_affinity_violations()}")
    return burst_deployed, disrupted


def main() -> None:
    print("Black-Friday burst: storefront scales ~100x against noisy")
    print("neighbours it must not share machines with (80-machine cluster).")
    aladdin_deployed, aladdin_lost = run(AladdinScheduler, "Aladdin")
    kube_deployed, kube_lost = run(GoKubeScheduler, "Go-Kube")
    print(
        f"\nBurst replicas deployed — Aladdin: {aladdin_deployed} "
        f"(steady pods lost {aladdin_lost}), Go-Kube: {kube_deployed} "
        f"(steady pods lost {kube_lost})"
    )
    if aladdin_deployed >= kube_deployed and aladdin_lost <= kube_lost:
        print("Aladdin absorbed the burst at least as well while "
              "disrupting fewer running containers: packing the noisy "
              "neighbours tightly leaves room to migrate rather than kill.")


if __name__ == "__main__":
    main()
