#!/usr/bin/env python
"""Steady-state churn: LLAs arriving and departing over time.

Long-lived applications are long-lived, not immortal — the paper notes
durations "ranging from hours to months" (Section I).  This example
runs the online simulator over the calibrated workload, showing the
running-container curve, peak machine usage and how often Aladdin's
migration mechanism fires under continuous fragmentation.

Run::

    python examples/online_churn.py [scale] [ticks]
"""

import sys

from repro import AladdinScheduler, GoKubeScheduler, generate_trace
from repro.report import format_series
from repro.sim.online import OnlineConfig, OnlineSimulator


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    ticks = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    trace = generate_trace(scale=scale, seed=0)
    config = OnlineConfig(ticks=ticks, lifetime_ticks=(10, 120))

    print(f"Online churn: {trace.n_containers} containers across "
          f"{trace.n_apps} LLAs, arrivals over {ticks} ticks, "
          f"lifetimes 10-120 ticks.\n")

    for scheduler in (AladdinScheduler(), GoKubeScheduler()):
        result = OnlineSimulator(trace, config).run(scheduler)
        step = max(1, len(result.samples) // 15)
        print(format_series(
            f"{scheduler.name}: running containers",
            result.series("running_containers")[::step],
        ))
        print(
            f"  failures {result.total_failed} ({result.failure_rate:.1%}), "
            f"peak machines {result.peak_used_machines}, "
            f"migrations {result.total_migrations}, "
            f"worst violations in any tick "
            f"{max(s.violations for s in result.samples)}\n"
        )


if __name__ == "__main__":
    main()
