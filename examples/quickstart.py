#!/usr/bin/env python
"""Quickstart: generate a workload, schedule it with Aladdin, inspect results.

Run::

    python examples/quickstart.py [scale]

Generates a synthetic Alibaba-like trace (default 1/50 of the paper's
scale), replays it through Aladdin and two comparators, and prints the
standard evaluation metrics.
"""

import sys

from repro import (
    AladdinScheduler,
    GoKubeScheduler,
    MedeaScheduler,
    MedeaWeights,
    Simulator,
    generate_trace,
    relative_efficiency,
    workload_stats,
)
from repro.report import metrics_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    trace = generate_trace(scale=scale, seed=0)

    stats = workload_stats(trace)
    print(f"Workload: {stats.n_apps} LLAs, {stats.n_containers} containers")
    print(
        f"  anti-affinity: {stats.n_anti_affinity_apps} apps, "
        f"priority: {stats.n_priority_apps} apps, "
        f"largest LLA: {stats.max_containers_per_app} containers"
    )

    # Pool sized 1.3x the trace cluster so inefficient schedulers can
    # overflow and the machines-used comparison stays meaningful.
    sim = Simulator(trace, machine_pool_factor=1.3)
    print(f"Machine pool: {sim.n_machines} machines (32 CPU / 64 GB each)\n")

    metrics = [
        sim.run(scheduler).metrics
        for scheduler in (
            AladdinScheduler(),
            GoKubeScheduler(),
            MedeaScheduler(MedeaWeights(1, 1, 0)),
        )
    ]
    print(metrics_table(metrics, title="Trace replay"))

    print("\nRelative efficiency (Equation 10, 0.0 = best):")
    for name, eff in relative_efficiency(metrics).items():
        print(f"  {name:28s} {eff:+.1%}")


if __name__ == "__main__":
    main()
