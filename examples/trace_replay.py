#!/usr/bin/env python
"""Full trace replay across all schedulers and arrival orders.

The closest single-command equivalent of the paper's evaluation:
generates the calibrated synthetic trace, replays it through every
Table-I comparator plus Aladdin under a chosen arrival order, and
prints the evaluation metrics plus Equation-10 relative efficiency.

Run::

    python examples/trace_replay.py [scale] [order]

e.g. ``python examples/trace_replay.py 0.05 csa``.
"""

import sys

from repro import (
    AladdinScheduler,
    ArrivalOrder,
    FirmamentPolicy,
    FirmamentScheduler,
    GoKubeScheduler,
    MedeaScheduler,
    MedeaWeights,
    Simulator,
    generate_trace,
    relative_efficiency,
)
from repro.report import metrics_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    order = ArrivalOrder(sys.argv[2]) if len(sys.argv) > 2 else ArrivalOrder.TRACE

    trace = generate_trace(scale=scale, seed=0)
    total_cpu = sum(a.cpu * a.n_containers for a in trace.applications)
    sim = Simulator(trace, n_machines=max(1, round(total_cpu / 32 / 0.92)))
    print(
        f"Replaying {trace.n_containers} containers ({trace.n_apps} LLAs) "
        f"onto {sim.n_machines} machines, order={order.value}\n"
    )

    schedulers = [
        GoKubeScheduler(),
        FirmamentScheduler(FirmamentPolicy.TRIVIAL, reschd=8),
        FirmamentScheduler(FirmamentPolicy.QUINCY, reschd=8),
        FirmamentScheduler(FirmamentPolicy.OCTOPUS, reschd=8),
        MedeaScheduler(MedeaWeights(1, 1, 1)),
        MedeaScheduler(MedeaWeights(1, 1, 0)),
        AladdinScheduler(),
    ]
    metrics = []
    for scheduler in schedulers:
        result = sim.run(scheduler, order)
        metrics.append(result.metrics)
        print(result.summary())

    print("\n" + metrics_table(metrics, title="Summary"))
    print("\nRelative efficiency (Equation 10, 0.0 = best):")
    for name, eff in relative_efficiency(metrics).items():
        print(f"  {name:28s} {eff:+.1%}")


if __name__ == "__main__":
    main()
