#!/usr/bin/env python
"""The Section IV.C co-design pipeline: EHC -> MA -> Aladdin -> RE.

Drives the simulated Kubernetes API server through two scheduling
rounds: a web tier with replica anti-affinity, then a cache tier that
must not share nodes with the web tier — the second round exercises
Aladdin's migration against live, already-bound pods.

Run::

    python examples/kubernetes_codesign.py
"""

from repro.kube import KubeApiServer, Node, Pod, PodPhase, SchedulingLoop


def dump(api: KubeApiServer) -> None:
    by_node: dict[str, list[str]] = {}
    for pod in api.pods(PodPhase.SCHEDULED):
        by_node.setdefault(pod.node_name, []).append(pod.name)
    for node in sorted(by_node):
        print(f"    {node}: {', '.join(sorted(by_node[node]))}")
    failed = [p.name for p in api.pods(PodPhase.FAILED)]
    if failed:
        print(f"    failed: {', '.join(failed)}")


def main() -> None:
    api = KubeApiServer()
    for i in range(5):
        api.add_node(Node(name=f"node-{i}", cpu=32.0, mem_gb=64.0))
    loop = SchedulingLoop(api)

    print("Round 1: web tier, 3 replicas, spread across nodes")
    for i in range(3):
        api.create_pod(Pod(
            name=f"web-{i}", app="web", cpu=8.0, mem_gb=16.0,
            priority=1, anti_affinity=("web",),
        ))
    result = loop.run_once()
    print(f"  deployed {result.n_deployed}, migrations {result.migrations}")
    dump(api)

    print("\nRound 2: cache tier (high priority, anti-affine to web)")
    for i in range(2):
        api.create_pod(Pod(
            name=f"cache-{i}", app="cache", cpu=24.0, mem_gb=48.0,
            priority=2, anti_affinity=("web",),
        ))
    result = loop.run_once()
    print(f"  deployed {result.n_deployed}, migrations {result.migrations}, "
          f"preemptions {result.preemptions}")
    dump(api)

    print(f"\nTotal bindings issued through the resolver: {len(api.bindings)}")


if __name__ == "__main__":
    main()
