#!/usr/bin/env python
"""The paper's Fig. 1 motivating example, executed live.

Three containers — one S0 and two S1 — arrive simultaneously on a
two-machine cluster.  Each S1 has higher priority, S1's replicas must
sit on distinct machines, and S1 must not share a machine with S0:

* **Firmament** ignores anti-affinity in its flow solve and repairs
  conflicts by rescheduling; a container ends up unscheduled (Fig. 1b).
* **Medea** with un-optimised weights tolerates a violation to minimise
  machines: S0 and an S1 share a machine (Fig. 1c).
* **Aladdin** expresses both constraints in its capacity function and
  deploys all three containers violation-free (given the third machine
  the others refuse to open).

Run::

    python examples/figure1_motivation.py
"""

from repro import (
    AladdinScheduler,
    Application,
    ClusterState,
    ConstraintSet,
    FirmamentPolicy,
    FirmamentScheduler,
    MedeaScheduler,
    MedeaWeights,
    build_cluster,
)
from repro.cluster.container import containers_of


def workload():
    s0 = Application(
        app_id=0, n_containers=1, cpu=12.0, mem_gb=24.0, priority=0,
        conflicts=frozenset({1}), name="S0",
    )
    s1 = Application(
        app_id=1, n_containers=2, cpu=20.0, mem_gb=40.0, priority=1,
        anti_affinity_within=True, conflicts=frozenset({0}), name="S1",
    )
    return [s0, s1]


def show(label, result, state, apps):
    names = {c.container_id: f"{apps[c.app_id].name}#{c.instance}"
             for c in containers_of(apps)}
    print(f"\n=== {label} ===")
    for cid, machine in sorted(result.placements.items()):
        tag = "  << VIOLATES anti-affinity" if cid in result.violating else ""
        print(f"  {names[cid]:6s} -> machine {machine}{tag}")
    for cid, reason in sorted(result.undeployed.items()):
        print(f"  {names[cid]:6s} -> UNDEPLOYED ({reason.value})")
    print(f"  anti-affinity violations in final state: "
          f"{state.anti_affinity_violations()}")


def run(label, scheduler, n_machines):
    apps = workload()
    topo = build_cluster(n_machines)
    state = ClusterState(topo, ConstraintSet.from_applications(apps))
    result = scheduler.schedule(containers_of(apps), state)
    show(label, result, state, apps)


def main() -> None:
    print("Fig. 1: one S0 (12 CPU) and two S1 (20 CPU each, high priority,")
    print("anti-affinity against S0 and between replicas) on 32-CPU machines.")

    run("Firmament-TRIVIAL(1) — leaves a container unscheduled (Fig. 1b)",
        FirmamentScheduler(FirmamentPolicy.TRIVIAL, reschd=1), n_machines=2)
    try:
        run("Medea(1,1,1) exact — tolerates one violation (Fig. 1c)",
            MedeaScheduler(MedeaWeights(1, 1, 1), exact=True), n_machines=2)
    except ImportError as exc:
        # The exact MILP needs the optional solver extra (scipy).
        print(f"\n=== Medea(1,1,1) exact — skipped: {exc} ===")
    run("Medea(1,1,0) — hard constraints starve S0 instead",
        MedeaScheduler(MedeaWeights(1, 1, 0)), n_machines=2)
    run("Aladdin — all three placed, zero violations",
        AladdinScheduler(), n_machines=3)


if __name__ == "__main__":
    main()
