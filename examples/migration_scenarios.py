#!/usr/bin/env python
"""The paper's Fig. 3 and Fig. 7 mechanism examples, executed live.

* Fig. 3(a): a low-priority container must never preempt a
  high-priority one — the weighted flow (Equations 3-5) forbids it.
* Fig. 3(b): a blocked container is admitted by *migrating* the
  high-priority blocker to another machine.
* Fig. 7: two-dimensional demands fragment across machines; Aladdin
  reschedules (migrates) a small task so the big one fits, at a bounded
  cost.

Run::

    python examples/migration_scenarios.py
"""

from repro import (
    AladdinConfig,
    AladdinScheduler,
    Application,
    ClusterState,
    ConstraintSet,
    MachineSpec,
    build_cluster,
)
from repro.cluster.container import containers_of


def fig3a() -> None:
    print("\n=== Fig. 3(a): low priority cannot preempt high priority ===")
    a = Application(app_id=0, n_containers=1, cpu=8.0, mem_gb=16.0,
                    priority=2, conflicts=frozenset({1}), name="A(high)")
    b = Application(app_id=1, n_containers=1, cpu=16.0, mem_gb=32.0,
                    priority=0, conflicts=frozenset({0}), name="B(low)")
    apps = [a, b]
    topo = build_cluster(1)
    state = ClusterState(topo, ConstraintSet.from_applications(apps))
    result = AladdinScheduler(AladdinConfig(final_repair=False)).schedule(
        containers_of(apps), state
    )
    print(f"  A placed: {0 in result.placements}  "
          f"B undeployed: {1 in result.undeployed}  "
          f"preemptions: {result.preemptions}")
    assert 0 in result.placements and result.preemptions == 0


def fig3b() -> None:
    print("\n=== Fig. 3(b): the blocker migrates to admit the newcomer ===")
    a = Application(app_id=0, n_containers=1, cpu=4.0, mem_gb=8.0,
                    priority=2, conflicts=frozenset({1}), name="A(high)")
    b = Application(app_id=1, n_containers=1, cpu=28.0, mem_gb=56.0,
                    priority=0, conflicts=frozenset({0}), name="B(low)")
    filler = Application(app_id=2, n_containers=1, cpu=26.0, mem_gb=52.0,
                         name="filler")
    apps = [a, b, filler]
    topo = build_cluster(2)
    state = ClusterState(topo, ConstraintSet.from_applications(apps))
    a_c, b_c, filler_c = containers_of(apps)
    state.deploy(a_c, 0)       # A runs on machine M (0)
    state.deploy(filler_c, 1)  # machine N (1) holds the filler
    result = AladdinScheduler().schedule([b_c], state)
    print(f"  B -> machine {result.placements[b_c.container_id]}, "
          f"A now on machine {state.assignment[a_c.container_id]}, "
          f"migrations: {result.migrations}")
    assert result.migrations == 1


def fig7() -> None:
    print("\n=== Fig. 7: 2-D rescheduling admits S3 at bounded cost ===")
    apps = [
        Application(app_id=0, n_containers=1, cpu=5.0, mem_gb=3.0, name="S0"),
        Application(app_id=1, n_containers=1, cpu=2.0, mem_gb=1.0, name="S1"),
        Application(app_id=2, n_containers=1, cpu=3.0, mem_gb=4.0, name="S2"),
        Application(app_id=3, n_containers=1, cpu=8.0, mem_gb=6.0, name="S3"),
    ]
    topo = build_cluster(2, machine=MachineSpec(cpu=10.0, mem_gb=10.0))
    state = ClusterState(topo, ConstraintSet.from_applications(apps))
    s0, s1, s2, s3 = containers_of(apps)
    # The Fig. 7(b) arrangement: sequential packing without migrations.
    state.deploy(s0, 0)
    state.deploy(s1, 0)
    state.deploy(s2, 1)
    print("  before: machine 0 holds S0,S1 | machine 1 holds S2 | "
          "S3 (8 CPU, 6 GB) fits nowhere")
    result = AladdinScheduler().schedule([s3], state)
    print(f"  after:  S3 -> machine {result.placements[s3.container_id]} "
          f"(migrations used: {result.migrations})")
    for cid in (s0, s1, s2):
        print(f"          {apps[cid.app_id].name} on machine "
              f"{state.assignment[cid.container_id]}")
    assert result.n_undeployed == 0


def main() -> None:
    fig3a()
    fig3b()
    fig7()
    print("\nAll three mechanism scenarios behaved as the paper describes.")


if __name__ == "__main__":
    main()
